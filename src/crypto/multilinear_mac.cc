#include "crypto/multilinear_mac.h"

#include <cstring>

#include "common/check.h"
#include "crypto/mac.h"

namespace meecc::crypto {

bool MacScheme::verify(std::uint64_t address, std::uint64_t version,
                       std::span<const std::uint8_t> data,
                       std::uint64_t expected_tag) const {
  return tag(address, version, data) == (expected_tag & kMacMask);
}

std::size_t MacScheme::verify_batch(const MacRequest* requests,
                                    std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    const MacRequest& request = requests[i];
    if (!verify(request.address, request.version, request.data,
                request.expected_tag))
      return i;
  }
  return n;
}

MultilinearMac::MultilinearMac(const Key128& key, std::size_t max_data_bytes,
                               std::string_view aes_backend)
    : aes_(make_aes_backend(aes_backend, key)) {
  MEECC_CHECK(max_data_bytes % 16 == 0 && max_data_bytes > 0);
  // Expand key words with AES-CTR over a fixed label: two 64-bit words per
  // encrypted block, one key word per 32-bit message word.
  const std::size_t words = max_data_bytes / 4;
  key_words_.reserve(words);
  std::uint64_t counter = 0;
  while (key_words_.size() < words) {
    Block in{};
    in[0] = 0x4b;  // 'K' — domain separation from the pad inputs
    std::memcpy(in.data() + 8, &counter, 8);
    ++counter;
    const Block out = aes_->encrypt(in);
    for (int half = 0; half < 2 && key_words_.size() < words; ++half) {
      std::uint64_t w = 0;
      std::memcpy(&w, out.data() + 8 * half, 8);
      key_words_.push_back(w | 1);  // odd key words: injective in low bits
    }
  }
}

Block MultilinearMac::pad_block(std::uint64_t address, std::uint64_t version) {
  Block in{};
  in[0] = 0x50;  // 'P'
  std::memcpy(in.data() + 1, &address, 7);
  std::memcpy(in.data() + 8, &version, 8);
  return in;
}

std::uint64_t MultilinearMac::pad(std::uint64_t address,
                                  std::uint64_t version) const {
  if (const std::uint64_t* cached = pad_cache_.find(address, version))
    return *cached;
  const Block out = aes_->encrypt(pad_block(address, version));
  std::uint64_t p = 0;
  std::memcpy(&p, out.data(), 8);
  pad_cache_.insert(address, version, p);
  return p;
}

std::uint64_t MultilinearMac::inner_product(
    std::span<const std::uint8_t> data) const {
  MEECC_CHECK(data.size() % 16 == 0);
  MEECC_CHECK_MSG(data.size() / 4 <= key_words_.size(),
                  "message longer than the expanded key");
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i * 4 < data.size(); ++i) {
    std::uint32_t word = 0;
    std::memcpy(&word, data.data() + 4 * i, 4);
    acc += static_cast<std::uint64_t>(word) * key_words_[i];  // mod 2^64
  }
  // Fold the message length in so equal-prefix messages of different
  // lengths cannot collide.
  acc += static_cast<std::uint64_t>(data.size()) *
         key_words_[key_words_.size() - 1];
  return acc;
}

std::uint64_t MultilinearMac::tag(std::uint64_t address, std::uint64_t version,
                                  std::span<const std::uint8_t> data) const {
  return (inner_product(data) + pad(address, version)) & kMacMask;
}

std::size_t MultilinearMac::verify_batch(const MacRequest* requests,
                                         std::size_t n) const {
  // Probe the pad cache for every request first (in request order, so the
  // hit/miss counters tally exactly as a serial loop would for distinct
  // nonces), then derive all the missing pads with one pipelined AES call.
  constexpr std::size_t kInline = 8;
  if (n > kInline) {
    // Larger batches than the walk ever produces: fall back per chunk.
    std::size_t done = 0;
    while (done < n) {
      const std::size_t take = n - done < kInline ? n - done : kInline;
      const std::size_t bad = verify_batch(requests + done, take);
      if (bad < take) return done + bad;
      done += take;
    }
    return n;
  }
  std::uint64_t pads[kInline];
  Block miss_blocks[kInline];
  std::size_t miss_index[kInline];
  std::size_t misses = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const MacRequest& request = requests[i];
    if (const std::uint64_t* cached =
            pad_cache_.find(request.address, request.version)) {
      pads[i] = *cached;
    } else {
      miss_blocks[misses] = pad_block(request.address, request.version);
      miss_index[misses] = i;
      ++misses;
    }
  }
  if (misses > 0) {
    Block outs[kInline];
    aes_->encrypt_blocks(miss_blocks, outs, misses);
    for (std::size_t m = 0; m < misses; ++m) {
      const std::size_t i = miss_index[m];
      std::uint64_t p = 0;
      std::memcpy(&p, outs[m].data(), 8);
      pad_cache_.insert(requests[i].address, requests[i].version, p);
      pads[i] = p;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t computed =
        (inner_product(requests[i].data) + pads[i]) & kMacMask;
    if (computed != (requests[i].expected_tag & kMacMask)) return i;
  }
  return n;
}

namespace {

/// Adapter presenting the CBC construction through the MacScheme interface.
class CbcMacScheme final : public MacScheme {
 public:
  explicit CbcMacScheme(const Key128& key, std::string_view aes_backend)
      : mac_(key, aes_backend) {}
  std::uint64_t tag(std::uint64_t address, std::uint64_t version,
                    std::span<const std::uint8_t> data) const override {
    return mac_.tag(address, version, data);
  }

 private:
  MacFunction mac_;
};

}  // namespace

std::unique_ptr<MacScheme> make_mac_scheme(MacKind kind, const Key128& key,
                                           std::string_view aes_backend) {
  switch (kind) {
    case MacKind::kCbcMac:
      return std::make_unique<CbcMacScheme>(key, aes_backend);
    case MacKind::kMultilinear:
      return std::make_unique<MultilinearMac>(key, /*max_data_bytes=*/64,
                                              aes_backend);
  }
  MEECC_CHECK_MSG(false, "unknown MAC kind");
  return nullptr;
}

}  // namespace meecc::crypto
