// T-table AES-128 backend: the classic software optimization that folds
// SubBytes + ShiftRows + MixColumns into four 1 KB lookup tables of 32-bit
// words, one table lookup and xor per state byte per round. The tables are
// generated at compile time from the shared S-box (aes_internals.h), so
// they cannot drift from the reference implementation.
//
// Word convention: a state column is one big-endian 32-bit word,
// w = (row0 << 24) | (row1 << 16) | (row2 << 8) | row3.
#include <cstring>

#include "crypto/aes_backend_impl.h"
#include "crypto/aes_internals.h"

namespace meecc::crypto::detail {
namespace {

constexpr std::uint32_t rotr8(std::uint32_t x) {
  return (x >> 8) | (x << 24);
}

struct Tables {
  std::array<std::uint32_t, 256> t0{}, t1{}, t2{}, t3{};
};

// Te0[x] packs column {02,01,01,03}·S[x]: the MixColumns contribution of a
// row-0 input byte; Te1..Te3 are byte rotations for rows 1..3.
constexpr Tables make_encrypt_tables() {
  Tables t;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    const std::uint32_t w = (static_cast<std::uint32_t>(s2) << 24) |
                            (static_cast<std::uint32_t>(s) << 16) |
                            (static_cast<std::uint32_t>(s) << 8) | s3;
    t.t0[i] = w;
    t.t1[i] = rotr8(w);
    t.t2[i] = rotr8(rotr8(w));
    t.t3[i] = rotr8(rotr8(rotr8(w)));
  }
  return t;
}

// Td0[x] packs {0e,09,0d,0b}·InvS[x]: the InvMixColumns contribution of a
// row-0 byte in the equivalent inverse cipher.
constexpr Tables make_decrypt_tables() {
  Tables t;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kInvSbox[i];
    const std::uint32_t w = (static_cast<std::uint32_t>(gmul(s, 0x0e)) << 24) |
                            (static_cast<std::uint32_t>(gmul(s, 0x09)) << 16) |
                            (static_cast<std::uint32_t>(gmul(s, 0x0d)) << 8) |
                            gmul(s, 0x0b);
    t.t0[i] = w;
    t.t1[i] = rotr8(w);
    t.t2[i] = rotr8(rotr8(w));
    t.t3[i] = rotr8(rotr8(rotr8(w)));
  }
  return t;
}

constexpr Tables kTe = make_encrypt_tables();
constexpr Tables kTd = make_decrypt_tables();

std::uint32_t load_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

void store_be(std::uint8_t* p, std::uint32_t w) {
  p[0] = static_cast<std::uint8_t>(w >> 24);
  p[1] = static_cast<std::uint8_t>(w >> 16);
  p[2] = static_cast<std::uint8_t>(w >> 8);
  p[3] = static_cast<std::uint8_t>(w);
}

void inv_mix_columns_bytes(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
    col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
    col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
    col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
  }
}

class TtableBackend final : public AesBackend {
 public:
  explicit TtableBackend(const Key128& key) {
    const RoundKeys round_keys = expand_key(key);
    for (int round = 0; round < 11; ++round)
      for (int word = 0; word < 4; ++word)
        ek_[4 * round + word] = load_be(&round_keys[round][4 * word]);

    // Equivalent inverse cipher: decrypt rounds run in key-reverse order
    // with InvMixColumns folded into the middle round keys.
    RoundKeys inv = round_keys;
    for (int round = 1; round <= 9; ++round)
      inv_mix_columns_bytes(inv[round].data());
    for (int round = 0; round < 11; ++round)
      for (int word = 0; word < 4; ++word)
        dk_[4 * round + word] = load_be(&inv[10 - round][4 * word]);
  }

  std::string_view name() const override { return "ttable"; }

  Block encrypt(const Block& plaintext) const override {
    std::uint32_t s0 = load_be(plaintext.data() + 0) ^ ek_[0];
    std::uint32_t s1 = load_be(plaintext.data() + 4) ^ ek_[1];
    std::uint32_t s2 = load_be(plaintext.data() + 8) ^ ek_[2];
    std::uint32_t s3 = load_be(plaintext.data() + 12) ^ ek_[3];
    for (int round = 1; round < 10; ++round) {
      const std::uint32_t* rk = &ek_[4 * round];
      const std::uint32_t t0 = kTe.t0[s0 >> 24] ^ kTe.t1[(s1 >> 16) & 0xff] ^
                               kTe.t2[(s2 >> 8) & 0xff] ^ kTe.t3[s3 & 0xff] ^
                               rk[0];
      const std::uint32_t t1 = kTe.t0[s1 >> 24] ^ kTe.t1[(s2 >> 16) & 0xff] ^
                               kTe.t2[(s3 >> 8) & 0xff] ^ kTe.t3[s0 & 0xff] ^
                               rk[1];
      const std::uint32_t t2 = kTe.t0[s2 >> 24] ^ kTe.t1[(s3 >> 16) & 0xff] ^
                               kTe.t2[(s0 >> 8) & 0xff] ^ kTe.t3[s1 & 0xff] ^
                               rk[2];
      const std::uint32_t t3 = kTe.t0[s3 >> 24] ^ kTe.t1[(s0 >> 16) & 0xff] ^
                               kTe.t2[(s1 >> 8) & 0xff] ^ kTe.t3[s2 & 0xff] ^
                               rk[3];
      s0 = t0, s1 = t1, s2 = t2, s3 = t3;
    }
    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    const std::uint32_t* rk = &ek_[40];
    Block out;
    store_be(out.data() + 0, final_word(kSbox, s0, s1, s2, s3) ^ rk[0]);
    store_be(out.data() + 4, final_word(kSbox, s1, s2, s3, s0) ^ rk[1]);
    store_be(out.data() + 8, final_word(kSbox, s2, s3, s0, s1) ^ rk[2]);
    store_be(out.data() + 12, final_word(kSbox, s3, s0, s1, s2) ^ rk[3]);
    return out;
  }

  Block decrypt(const Block& ciphertext) const override {
    std::uint32_t s0 = load_be(ciphertext.data() + 0) ^ dk_[0];
    std::uint32_t s1 = load_be(ciphertext.data() + 4) ^ dk_[1];
    std::uint32_t s2 = load_be(ciphertext.data() + 8) ^ dk_[2];
    std::uint32_t s3 = load_be(ciphertext.data() + 12) ^ dk_[3];
    for (int round = 1; round < 10; ++round) {
      const std::uint32_t* rk = &dk_[4 * round];
      const std::uint32_t t0 = kTd.t0[s0 >> 24] ^ kTd.t1[(s3 >> 16) & 0xff] ^
                               kTd.t2[(s2 >> 8) & 0xff] ^ kTd.t3[s1 & 0xff] ^
                               rk[0];
      const std::uint32_t t1 = kTd.t0[s1 >> 24] ^ kTd.t1[(s0 >> 16) & 0xff] ^
                               kTd.t2[(s3 >> 8) & 0xff] ^ kTd.t3[s2 & 0xff] ^
                               rk[1];
      const std::uint32_t t2 = kTd.t0[s2 >> 24] ^ kTd.t1[(s1 >> 16) & 0xff] ^
                               kTd.t2[(s0 >> 8) & 0xff] ^ kTd.t3[s3 & 0xff] ^
                               rk[2];
      const std::uint32_t t3 = kTd.t0[s3 >> 24] ^ kTd.t1[(s2 >> 16) & 0xff] ^
                               kTd.t2[(s1 >> 8) & 0xff] ^ kTd.t3[s0 & 0xff] ^
                               rk[3];
      s0 = t0, s1 = t1, s2 = t2, s3 = t3;
    }
    const std::uint32_t* rk = &dk_[40];
    Block out;
    store_be(out.data() + 0, final_word(kInvSbox, s0, s3, s2, s1) ^ rk[0]);
    store_be(out.data() + 4, final_word(kInvSbox, s1, s0, s3, s2) ^ rk[1]);
    store_be(out.data() + 8, final_word(kInvSbox, s2, s1, s0, s3) ^ rk[2]);
    store_be(out.data() + 12, final_word(kInvSbox, s3, s2, s1, s0) ^ rk[3]);
    return out;
  }

 private:
  static std::uint32_t final_word(const std::array<std::uint8_t, 256>& sbox,
                                  std::uint32_t a, std::uint32_t b,
                                  std::uint32_t c, std::uint32_t d) {
    return (static_cast<std::uint32_t>(sbox[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(sbox[(b >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(sbox[(c >> 8) & 0xff]) << 8) |
           sbox[d & 0xff];
  }

  std::array<std::uint32_t, 44> ek_{};
  std::array<std::uint32_t, 44> dk_{};
};

}  // namespace

std::unique_ptr<const AesBackend> make_ttable_backend(const Key128& key) {
  return std::make_unique<TtableBackend>(key);
}

}  // namespace meecc::crypto::detail
