#include "crypto/aes_backend.h"

#include <stdexcept>

#include "common/check.h"
#include "crypto/aes_backend_impl.h"

namespace meecc::crypto {
namespace {

/// Reference backend: the byte-wise FIPS-197 implementation every other
/// backend is validated against.
class ReferenceBackend final : public AesBackend {
 public:
  explicit ReferenceBackend(const Key128& key) : aes_(key) {}
  std::string_view name() const override { return "reference"; }
  Block encrypt(const Block& plaintext) const override {
    return aes_.encrypt(plaintext);
  }
  Block decrypt(const Block& ciphertext) const override {
    return aes_.decrypt(ciphertext);
  }

 private:
  Aes128 aes_;
};

std::unique_ptr<const AesBackend> make_reference(const Key128& key) {
  return std::make_unique<ReferenceBackend>(key);
}

struct BackendInfo {
  std::string_view name;
  bool (*available)();
  std::unique_ptr<const AesBackend> (*make)(const Key128&);
};

bool always_available() { return true; }

constexpr BackendInfo kBackends[] = {
    {"reference", always_available, make_reference},
    {"ttable", always_available, detail::make_ttable_backend},
    {"aesni", detail::aesni_supported, detail::make_aesni_backend},
};

const BackendInfo* find_backend(std::string_view name) {
  for (const auto& info : kBackends)
    if (info.name == name) return &info;
  return nullptr;
}

}  // namespace

std::vector<std::string> aes_backend_names() {
  std::vector<std::string> names;
  for (const auto& info : kBackends) names.emplace_back(info.name);
  names.emplace_back(kAutoBackend);
  return names;
}

bool is_aes_backend(std::string_view name) {
  return name == kAutoBackend || find_backend(name) != nullptr;
}

bool aes_backend_available(std::string_view name) {
  if (name == kAutoBackend) return true;
  const BackendInfo* info = find_backend(name);
  return info != nullptr && info->available();
}

std::string_view resolve_aes_backend(std::string_view name) {
  if (name != kAutoBackend) return name;
  return detail::aesni_supported() ? "aesni" : "ttable";
}

std::unique_ptr<const AesBackend> make_aes_backend(std::string_view name,
                                                   const Key128& key) {
  const std::string_view resolved = resolve_aes_backend(name);
  const BackendInfo* info = find_backend(resolved);
  if (info == nullptr)
    throw std::invalid_argument("unknown AES backend '" + std::string(name) +
                                "'");
  MEECC_CHECK_MSG(info->available(),
                  "AES backend not supported on this CPU");
  auto backend = info->make(key);
  MEECC_CHECK(backend != nullptr);
  return backend;
}

}  // namespace meecc::crypto
