// Internal: per-translation-unit backend factories consumed by the registry
// in aes_backend.cc. Not installed API — include crypto/aes_backend.h.
#pragma once

#include <memory>

#include "crypto/aes_backend.h"

namespace meecc::crypto::detail {

std::unique_ptr<const AesBackend> make_ttable_backend(const Key128& key);

/// Null when the CPU lacks the AES extension (see aesni_supported).
std::unique_ptr<const AesBackend> make_aesni_backend(const Key128& key);
bool aesni_supported();

}  // namespace meecc::crypto::detail
