#include "crypto/aes128.h"

#include <cstring>

#include "crypto/aes_internals.h"

namespace meecc::crypto {
namespace {

using detail::gmul;
using detail::kInvSbox;
using detail::kSbox;
using detail::xtime;

void sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

void inv_sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = kInvSbox[s[i]];
}

// State is column-major: s[4*c + r] is row r, column c.
void shift_rows(std::uint8_t* s) {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c) s[4 * c + r] = t[4 * ((c + r) % 4) + r];
}

void inv_shift_rows(std::uint8_t* s) {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c) s[4 * ((c + r) % 4) + r] = t[4 * c + r];
}

void mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void inv_mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
    col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
    col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
    col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
  }
}

void add_round_key(std::uint8_t* s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

Aes128::Aes128(const Key128& key) : round_keys_(detail::expand_key(key)) {}

Block Aes128::encrypt(const Block& plaintext) const {
  Block s = plaintext;
  add_round_key(s.data(), round_keys_[0].data());
  for (int round = 1; round < 10; ++round) {
    sub_bytes(s.data());
    shift_rows(s.data());
    mix_columns(s.data());
    add_round_key(s.data(), round_keys_[round].data());
  }
  sub_bytes(s.data());
  shift_rows(s.data());
  add_round_key(s.data(), round_keys_[10].data());
  return s;
}

Block Aes128::decrypt(const Block& ciphertext) const {
  Block s = ciphertext;
  add_round_key(s.data(), round_keys_[10].data());
  for (int round = 9; round >= 1; --round) {
    inv_shift_rows(s.data());
    inv_sub_bytes(s.data());
    add_round_key(s.data(), round_keys_[round].data());
    inv_mix_columns(s.data());
  }
  inv_shift_rows(s.data());
  inv_sub_bytes(s.data());
  add_round_key(s.data(), round_keys_[0].data());
  return s;
}

}  // namespace meecc::crypto
