// Truncated 56-bit MAC tags for the integrity tree, CBC-MAC over AES with the
// authenticated context (address, version) folded into the first block.
//
// The real MEE uses a Carter–Wegman multilinear MAC for hardware parallelism
// (Gueron, 2016); CBC-MAC gives the same interface contract the simulator
// needs — any change to data, address, or version flips the tag — with a
// well-understood software construction. Tags are truncated to 56 bits to
// match the MEE's per-line tag budget.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "crypto/aes_backend.h"

namespace meecc::crypto {

inline constexpr std::uint64_t kMacMask = (1ULL << 56) - 1;

class MacFunction {
 public:
  explicit MacFunction(const Key128& key,
                       std::string_view aes_backend = kAutoBackend);

  /// 56-bit tag over (address, version, data). `data` length must be a
  /// multiple of 16 bytes (the MEE always authenticates whole lines).
  std::uint64_t tag(std::uint64_t address, std::uint64_t version,
                    std::span<const std::uint8_t> data) const;

  bool verify(std::uint64_t address, std::uint64_t version,
              std::span<const std::uint8_t> data,
              std::uint64_t expected_tag) const;

 private:
  std::unique_ptr<const AesBackend> aes_;
};

}  // namespace meecc::crypto
