// AES-NI backend: one hardware round instruction per AES round. Compiled
// with per-function target attributes (no global -maes), so the binary
// still runs on CPUs without the extension — the registry consults
// aesni_supported() (CPUID) before ever constructing this backend.
//
// Round keys come from the shared portable key schedule (aes_internals.h)
// instead of aeskeygenassist gymnastics: key setup is off the hot path, and
// one schedule shared by all backends means they cannot disagree.
#include <cstring>

#include "crypto/aes_backend_impl.h"
#include "crypto/aes_internals.h"

#if defined(__x86_64__) || defined(__i386__)
#define MEECC_AESNI_COMPILED 1
#include <wmmintrin.h>
#endif

namespace meecc::crypto::detail {

#ifdef MEECC_AESNI_COMPILED

namespace {

class AesniBackend final : public AesBackend {
 public:
  explicit AesniBackend(const Key128& key) { init(key); }

  std::string_view name() const override { return "aesni"; }

  __attribute__((target("aes,sse2"))) Block
  encrypt(const Block& plaintext) const override {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(plaintext.data()));
    s = _mm_xor_si128(s, enc_[0]);
    for (int round = 1; round < 10; ++round) s = _mm_aesenc_si128(s, enc_[round]);
    s = _mm_aesenclast_si128(s, enc_[10]);
    Block out;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), s);
    return out;
  }

  /// Pipelined multi-block encryption: the aesenc units are fully
  /// pipelined (latency ~4 cycles, throughput 1-2/cycle), so running up to
  /// eight independent states through each round back-to-back hides nearly
  /// all of the per-block latency. Remainders shorter than 8 loop the same
  /// code with a partial state count.
  __attribute__((target("aes,sse2"))) void encrypt_blocks(
      const Block* in, Block* out, std::size_t n) const override {
    std::size_t i = 0;
    while (i < n) {
      const std::size_t lane_count = n - i < 8 ? n - i : 8;
      __m128i s[8];
      for (std::size_t lane = 0; lane < lane_count; ++lane)
        s[lane] = _mm_xor_si128(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(in[i + lane].data())),
            enc_[0]);
      for (int round = 1; round < 10; ++round)
        for (std::size_t lane = 0; lane < lane_count; ++lane)
          s[lane] = _mm_aesenc_si128(s[lane], enc_[round]);
      for (std::size_t lane = 0; lane < lane_count; ++lane)
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out[i + lane].data()),
                         _mm_aesenclast_si128(s[lane], enc_[10]));
      i += lane_count;
    }
  }

  __attribute__((target("aes,sse2"))) Block
  decrypt(const Block& ciphertext) const override {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ciphertext.data()));
    s = _mm_xor_si128(s, dec_[0]);
    for (int round = 1; round < 10; ++round) s = _mm_aesdec_si128(s, dec_[round]);
    s = _mm_aesdeclast_si128(s, dec_[10]);
    Block out;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), s);
    return out;
  }

 private:
  __attribute__((target("aes,sse2"))) void init(const Key128& key) {
    const RoundKeys round_keys = expand_key(key);
    for (int round = 0; round < 11; ++round)
      enc_[round] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(round_keys[round].data()));
    // Equivalent inverse cipher: reverse key order, InvMixColumns (aesimc)
    // on the middle keys.
    dec_[0] = enc_[10];
    for (int round = 1; round < 10; ++round)
      dec_[round] = _mm_aesimc_si128(enc_[10 - round]);
    dec_[10] = enc_[0];
  }

  __m128i enc_[11];
  __m128i dec_[11];
};

}  // namespace

bool aesni_supported() { return __builtin_cpu_supports("aes"); }

std::unique_ptr<const AesBackend> make_aesni_backend(const Key128& key) {
  if (!aesni_supported()) return nullptr;
  return std::make_unique<AesniBackend>(key);
}

#else  // !MEECC_AESNI_COMPILED

bool aesni_supported() { return false; }

std::unique_ptr<const AesBackend> make_aesni_backend(const Key128&) {
  return nullptr;
}

#endif

}  // namespace meecc::crypto::detail
