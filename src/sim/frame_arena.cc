#include "sim/frame_arena.h"

#include <algorithm>
#include <new>

namespace meecc::sim {

thread_local FrameArena* FrameArena::ambient_ = nullptr;

FrameArena::~FrameArena() {
  for (void* chunk : chunks_) ::operator delete(chunk);
}

void* FrameArena::allocate_ambient(std::size_t size) {
  // Reserve at least one pointer of payload: parked blocks thread their
  // freelist link through it.
  const std::size_t total =
      (std::max(size, sizeof(void*)) + sizeof(Header) + kAlign - 1) &
      ~(kAlign - 1);
  if (ambient_ != nullptr && total <= kMaxClassBytes)
    return ambient_->allocate(total);
  Header* header = static_cast<Header*>(::operator new(total));
  header->owner = nullptr;
  header->bytes = total;
  return header + 1;
}

void FrameArena::deallocate(void* ptr) noexcept {
  if (ptr == nullptr) return;
  Header* header = static_cast<Header*>(ptr) - 1;
  if (header->owner == nullptr) {
    ::operator delete(header);
    return;
  }
  header->owner->recycle(header);
}

void* FrameArena::allocate(std::size_t total) {
  const std::size_t cls = total / kAlign;
  if (void* parked = free_lists_[cls]) {
    Header* header = static_cast<Header*>(parked);
    free_lists_[cls] = *reinterpret_cast<void**>(header + 1);
    header->owner = this;
    header->bytes = total;
    return header + 1;
  }
  if (chunks_.empty()) chunks_.push_back(::operator new(kChunkBytes));
  if (chunk_used_ + total > kChunkBytes) {
    if (++active_chunk_ == chunks_.size())
      chunks_.push_back(::operator new(kChunkBytes));
    chunk_used_ = 0;
  }
  Header* header = reinterpret_cast<Header*>(
      static_cast<char*>(chunks_[active_chunk_]) + chunk_used_);
  chunk_used_ += total;
  header->owner = this;
  header->bytes = total;
  return header + 1;
}

void FrameArena::recycle(Header* header) noexcept {
  const std::size_t cls = header->bytes / kAlign;
  *reinterpret_cast<void**>(header + 1) = free_lists_[cls];
  free_lists_[cls] = header;
}

void FrameArena::reset() {
  std::fill(free_lists_.begin(), free_lists_.end(), nullptr);
  active_chunk_ = 0;
  chunk_used_ = 0;
}

std::size_t FrameArena::free_blocks() const {
  std::size_t n = 0;
  for (void* head : free_lists_)
    for (void* p = head; p != nullptr;
         p = *reinterpret_cast<void**>(static_cast<Header*>(p) + 1))
      ++n;
  return n;
}

}  // namespace meecc::sim
