// Monotonic arena with size-class recycling for coroutine frames.
//
// The DES kernel spawns and destroys short-lived Task frames at a high rate
// (one per eviction test, per probe, per timing sample); routing them
// through the global allocator made frame churn a visible fraction of
// scheduler.churn. A FrameArena hands out 16 B-granular blocks from large
// chunks and recycles freed blocks through per-size freelists, so steady
// state allocation is a pop and deallocation a push — no malloc, no lock.
//
// Frames bind to an arena through the thread-local ambient pointer: code
// that spawns coroutines installs a Scope around the spawn (and
// Scheduler::dispatch installs one around every resume, so child Task
// frames land in the owning scheduler's arena automatically). Frames
// allocated with no ambient arena carry a null owner in their header and go
// through the global heap — deallocation dispatches on the header, so mixed
// populations are safe.
//
// Lifetime rule: every block must be freed before its owning arena dies.
// The Scheduler owns its arena and destroys all owned coroutine frames in
// its destructor body, which runs before member destruction.
#pragma once

#include <cstddef>
#include <vector>

namespace meecc::sim {

class FrameArena {
 public:
  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  /// Allocates from the thread-local ambient arena, or the global heap when
  /// none is installed. Called by PromiseBase::operator new.
  static void* allocate_ambient(std::size_t size);

  /// Returns the block to whichever allocator produced it (header dispatch).
  static void deallocate(void* ptr) noexcept;

  /// Drops the freelists and rewinds the bump cursor to the first chunk.
  /// Only legal when no block from this arena is live (e.g. a scheduler
  /// that has destroyed every owned coroutine).
  void reset();

  /// Total chunk bytes reserved (tests / footprint).
  std::size_t bytes_reserved() const { return chunks_.size() * kChunkBytes; }

  /// Blocks currently parked on the freelists (tests: proves recycling).
  std::size_t free_blocks() const;

  /// RAII installer for the thread-local ambient arena; nests.
  class Scope {
   public:
    explicit Scope(FrameArena* arena) : previous_(ambient_) {
      ambient_ = arena;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { ambient_ = previous_; }

   private:
    FrameArena* previous_;
  };

 private:
  /// Precedes every block. 16 bytes, so payloads keep max_align alignment.
  struct alignas(16) Header {
    FrameArena* owner;  // null → global heap block
    std::size_t bytes;  // total block size including this header
  };

  static constexpr std::size_t kAlign = 16;
  /// Blocks above this total size bypass the arena (coroutine frames are
  /// small; anything bigger is rare enough that malloc is fine).
  static constexpr std::size_t kMaxClassBytes = 4096;
  static constexpr std::size_t kChunkBytes = 256 * 1024;

  void* allocate(std::size_t total);
  void recycle(Header* header) noexcept;

  static thread_local FrameArena* ambient_;

  std::vector<void*> chunks_;
  std::size_t active_chunk_ = 0;  // index into chunks_ being bumped
  std::size_t chunk_used_ = 0;    // bytes used in chunks_[active_chunk_]
  /// Freelist heads indexed by total/kAlign; parked blocks link through
  /// their (dead) payload's first word.
  std::vector<void*> free_lists_ =
      std::vector<void*>(kMaxClassBytes / kAlign + 1, nullptr);
};

}  // namespace meecc::sim
