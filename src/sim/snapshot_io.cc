#include "sim/snapshot_io.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace meecc::sim {

namespace {

void encode_memory(io::Writer& w, const mem::PhysicalMemory::Image& image) {
  if (!image) {
    w.u64(0);
    return;
  }
  // Sort the resident lines by address: unordered_map iteration order is
  // host-dependent and the encoding must be canonical.
  std::vector<std::pair<std::uint64_t, const mem::Line*>> lines;
  lines.reserve(image->size());
  for (const auto& [addr, line] : *image) lines.emplace_back(addr, &line);
  std::sort(lines.begin(), lines.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(lines.size());
  for (const auto& [addr, line] : lines) {
    w.u64(addr);
    w.bytes(line->data(), line->size());
  }
}

mem::PhysicalMemory::Image decode_memory(io::Reader& r) {
  const std::uint64_t count = r.u64();
  if (count == 0) return nullptr;
  auto lines =
      std::make_shared<std::unordered_map<std::uint64_t, mem::Line>>();
  lines->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t addr = r.u64();
    mem::Line line;
    r.bytes(line.data(), line.size());
    if (!lines->emplace(addr, line).second)
      throw io::DecodeError("duplicate line address in DRAM image");
  }
  return lines;
}

void encode_counters(io::Writer& w, const obs::Registry::State& counters) {
  // std::map keeps both levels sorted, so iteration is already canonical.
  w.u64(counters.size());
  for (const auto& [group, slots] : counters) {
    w.str(group);
    w.u64(slots.size());
    for (const auto& [name, value] : slots) {
      w.str(name);
      w.u64(value);
    }
  }
}

obs::Registry::State decode_counters(io::Reader& r) {
  obs::Registry::State counters;
  const std::uint64_t groups = r.u64();
  for (std::uint64_t g = 0; g < groups; ++g) {
    std::string group = r.str();
    auto& slots = counters[std::move(group)];
    const std::uint64_t entries = r.u64();
    for (std::uint64_t e = 0; e < entries; ++e) {
      std::string name = r.str();
      slots[std::move(name)] = r.u64();
    }
  }
  return counters;
}

void encode_mee(io::Writer& w, System& shape, const mee::MeeEngine::State& mee) {
  mee.cache.encode_state(w);
  w.u64(mee.root_counters.size());
  for (const std::uint64_t counter : mee.root_counters) w.u64(counter);
  encode_rng(w, mee.rng);
  w.u64(mee.busy_until);
  w.u64(mee.walks_since_rekey);
  mee.cipher_pads.encode_state(w);
  // The MAC pad state is type-erased; route it through the shape engine's
  // scheme, which knows the concrete pad type (scratch use — the shape's
  // own pads are clobbered).
  crypto::MacScheme& mac = shape.mee().mac_scheme();
  mac.import_pad_state(mee.mac_pads.get());
  mac.encode_pad_state(w);
}

mee::MeeEngine::State decode_mee(io::Reader& r, System& shape) {
  // Start from the shape's own export: the cache value inside carries the
  // right geometry/policy construction for decode_state to overwrite.
  mee::MeeEngine::State state = shape.mee().export_state();
  state.cache.decode_state(r);
  const std::uint64_t roots = r.u64();
  if (roots != state.root_counters.size())
    throw io::DecodeError("root counter count mismatch");
  for (auto& counter : state.root_counters) counter = r.u64();
  state.rng = decode_rng(r);
  state.busy_until = r.u64();
  state.walks_since_rekey = r.u64();
  state.cipher_pads.decode_state(r);
  crypto::MacScheme& mac = shape.mee().mac_scheme();
  mac.decode_pad_state(r);
  state.mac_pads = mac.export_pad_state();
  return state;
}

}  // namespace

void encode_snapshot(io::Writer& w, System& shape,
                     const SystemSnapshot& snap) {
  encode_memory(w, snap.memory);
  encode_rng(w, snap.dram.rng);
  w.u64(snap.dram.accesses);
  const auto encode_caches = [&w](const std::vector<cache::SetAssocCache>& v) {
    w.u64(v.size());
    for (const auto& c : v) c.encode_state(w);
  };
  encode_caches(snap.hierarchy.l1);
  encode_caches(snap.hierarchy.l2);
  encode_caches(snap.hierarchy.llc);
  encode_mee(w, shape, snap.mee);
  snap.peek_pads.encode_state(w);
  w.u64(snap.epc_cursor);
  w.u64(snap.general_cursor.raw);
  encode_rng(w, snap.rng);
  w.u64(snap.sched_now);
  w.u64(snap.sched_seq);
  encode_counters(w, snap.counters);
}

SystemSnapshot decode_snapshot(io::Reader& r, System& shape) {
  SystemSnapshot snap = shape.snapshot();
  snap.memory = decode_memory(r);
  snap.dram.rng = decode_rng(r);
  snap.dram.accesses = r.u64();
  const auto decode_caches = [&r](std::vector<cache::SetAssocCache>& v) {
    if (r.u64() != v.size())
      throw io::DecodeError("cache level count mismatch");
    for (auto& c : v) c.decode_state(r);
  };
  decode_caches(snap.hierarchy.l1);
  decode_caches(snap.hierarchy.l2);
  decode_caches(snap.hierarchy.llc);
  snap.mee = decode_mee(r, shape);
  snap.peek_pads.decode_state(r);
  snap.epc_cursor = static_cast<std::size_t>(r.u64());
  snap.general_cursor = PhysAddr{r.u64()};
  snap.rng = decode_rng(r);
  snap.sched_now = r.u64();
  snap.sched_seq = r.u64();
  snap.counters = decode_counters(r);
  return snap;
}

std::string serialize_snapshot(System& shape, const SystemSnapshot& snap,
                               std::uint64_t config_hash) {
  io::Writer w;
  encode_snapshot(w, shape, snap);
  return io::write_frame(kSnapshotMagic, kSnapshotFormatVersion, config_hash,
                         w.data());
}

SnapshotReadResult deserialize_snapshot(System& shape, std::string_view bytes,
                                        std::uint64_t expected_config_hash) {
  SnapshotReadResult result;
  const io::FrameView frame = io::read_frame(
      bytes, kSnapshotMagic, kSnapshotFormatVersion, expected_config_hash);
  result.status = frame.status;
  if (frame.status != io::FrameStatus::kOk) return result;
  io::Reader r(frame.payload);
  result.snapshot = std::make_unique<SystemSnapshot>(decode_snapshot(r, shape));
  r.expect_done();
  return result;
}

}  // namespace meecc::sim
