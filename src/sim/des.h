// Discrete-event simulation kernel on C++20 coroutines.
//
// Agents (trojan, spy, noise generators) are coroutines returning Process.
// Each agent owns a local clock (sim::Actor); the scheduler always resumes
// the agent whose next event time is globally minimal (FIFO tie-break), so
// shared-state mutations — cache fills, MEE walks — happen in global time
// order.
//
// Composition: agent logic factors into Task<T> sub-coroutines (e.g. "run one
// eviction test"). Awaiting a Task starts it immediately (symmetric
// transfer); when the child suspends on a memory operation it parks ITS OWN
// handle in the scheduler, and on completion control transfers straight back
// to the parent. Exceptions propagate parent-ward through await_resume; an
// exception escaping a top-level Process is rethrown out of the scheduler.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.h"
#include "obs/hub.h"
#include "sim/frame_arena.h"

namespace meecc::sim {

class Scheduler;

/// State shared by every simulation promise type: the stored exception and
/// (for awaited Tasks) the coroutine to resume on completion. The
/// allocation operators route every Process/Task coroutine frame through
/// the thread-local ambient FrameArena (heap fallback when none is
/// installed) — Scheduler::dispatch installs its own arena around each
/// resume, so frames spawned mid-simulation recycle instead of malloc'ing.
struct PromiseBase {
  std::exception_ptr exception;
  std::coroutine_handle<> continuation;

  static void* operator new(std::size_t size) {
    return FrameArena::allocate_ambient(size);
  }
  static void operator delete(void* ptr) noexcept {
    FrameArena::deallocate(ptr);
  }
};

/// Top-level agent coroutine. Fire-and-forget: ownership transfers to the
/// Scheduler via spawn().
class [[nodiscard]] Process {
 public:
  struct promise_type : PromiseBase {
    // Set by Scheduler::spawn so completion can be reported in O(1):
    // `owned_index` is this coroutine's slot in the scheduler's owned list,
    // kept current under swap-removal.
    Scheduler* scheduler = nullptr;
    std::size_t owned_index = 0;

    /// final_suspend awaiter: tells the owning scheduler this agent just
    /// finished (normally or with a stored exception), so dispatch never has
    /// to scan for completed handles. unhandled_exception() runs before
    /// final_suspend, so this single notification covers both outcomes.
    struct FinalNotify {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() const noexcept {}
    };

    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalNotify final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Process(Process&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;
  ~Process();

 private:
  friend class Scheduler;
  explicit Process(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

/// final_suspend awaiter that hands control back to whoever awaited us.
struct ResumeContinuation {
  bool await_ready() const noexcept { return false; }
  template <typename P>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
    if (auto continuation = h.promise().continuation) return continuation;
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

/// Awaitable sub-coroutine returning T (or void). Must be co_await'ed from a
/// Process or another Task; runs on the awaiting agent's clock.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::ResumeContinuation final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  template <typename P>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<P> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // start the child immediately
  }
  T await_resume() {
    if (handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
    return std::move(*handle_.promise().value);
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::ResumeContinuation final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  template <typename P>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<P> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  std::coroutine_handle<promise_type> handle_;
};

/// Opaque reference to a spawned top-level agent, returned by spawn() and
/// accepted by cancel(). Becomes stale once the agent finishes or is
/// cancelled; cancel() detects staleness (by address, so a recycled frame
/// at the same address could in principle alias — don't hold handles
/// across unrelated spawns) and refuses.
class ProcessHandle {
 public:
  ProcessHandle() = default;

 private:
  friend class Scheduler;
  explicit ProcessHandle(std::coroutine_handle<Process::promise_type> handle)
      : handle_(handle) {}

  std::coroutine_handle<Process::promise_type> handle_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Takes ownership of the coroutine and schedules its first step at
  /// `start`; the returned handle can cancel the agent later.
  ProcessHandle spawn(Process process, Cycles start = 0);

  /// Destroys a live agent and removes its pending events from the queue
  /// (remaining events keep their sequence numbers, so sibling ordering is
  /// unchanged and no new sequence numbers are consumed). Returns false for
  /// a stale handle (agent already finished or cancelled). Only safe for
  /// agents parked in the scheduler itself — i.e. not mid-await inside a
  /// child Task — which holds for every agent suspended on a memory-op or
  /// sleep awaitable at its top level.
  bool cancel(ProcessHandle handle);

  /// Re-arms `handle` (any simulation coroutine) to resume once `when`
  /// becomes the global minimum. Called by awaitables, not user code.
  /// Inline (with bucket_for) because awaitables call it from headers once
  /// per simulated event — an out-of-line hop here is measurable on the
  /// scheduler.dispatch kernel.
  void enqueue(std::coroutine_handle<> handle, Cycles when) {
    // Events never fire in the past: a stale clock is clamped to `now`.
    // seq_ still advances once per enqueue (snapshot/fork restores it), but
    // the value is no longer stored per event — bucket append order carries
    // the same tie-break.
    scheduled_.inc();
    ++seq_;
    buckets_[bucket_for(std::max(when, now_))].ready.push_back(handle);
    ++pending_;
  }

  /// Runs events with time <= `until`; returns events processed. Rethrows
  /// the first exception that escaped a top-level Process.
  std::uint64_t run_until(Cycles until);

  /// Runs until no events remain.
  std::uint64_t run_to_completion();

  /// Dispatches exactly one event; returns false when none remain.
  /// Experiment drivers use this to run "until some agent sets a flag"
  /// without needing a horizon (noise agents run forever).
  bool step();

  /// Time of the most recently dispatched event.
  Cycles now() const { return now_; }

  bool idle() const { return pending_ == 0; }

  /// Attaches scheduling counters (des.spawned/scheduled/dispatched) to
  /// `hub` (borrowed; may be nullptr to detach). Called by sim::System.
  void set_hub(obs::Hub* hub);

  /// Spawned agents still owned by the scheduler (finished ones are
  /// reclaimed after the dispatch in which they complete).
  std::size_t live_processes() const { return owned_.size(); }

  /// Next event sequence number — snapshot/fork captures it so a restored
  /// scheduler hands out the same tie-break order as the original.
  std::uint64_t event_seq() const { return seq_; }

  /// Rewinds/forwards the clock and sequence counter onto a snapshot's
  /// values. Only legal on a quiesced scheduler (no events, no agents):
  /// anything still queued would fire against the wrong timeline.
  void restore_clock(Cycles now, std::uint64_t seq);

  /// The arena backing this scheduler's coroutine frames. dispatch()
  /// installs it around every resume; spawn sites install it explicitly
  /// (FrameArena::Scope) so the initial frames land there too.
  FrameArena& arena() { return arena_; }

 private:
  friend struct Process::promise_type::FinalNotify;

  /// All events pending at one timestamp, in enqueue order. seq_ increments
  /// monotonically per enqueue, so append order IS sequence order — the
  /// per-event seq the old binary heap stored to break timestamp ties is
  /// implicit in the vector. Slots are recycled through free_buckets_ with
  /// their capacity intact, so a steady-state simulation enqueues and
  /// drains without touching the allocator.
  struct TimeBucket {
    Cycles when = 0;
    std::uint64_t seq = 0;  ///< creation sequence (heap tie-break)
    bool live = false;
    std::vector<std::coroutine_handle<>> ready;
  };

  /// Index of a live bucket for `when` to append to: the one-slot enqueue
  /// memo when it matches, else a freshly created bucket (registered in
  /// times_ or parked on deck) — never a scan. Same-time buckets may
  /// therefore coexist; the heap drains them in creation order, which is
  /// enqueue order.
  std::uint32_t bucket_for(Cycles when) {
    if (enqueue_hint_ < buckets_.size()) {
      const TimeBucket& hint = buckets_[enqueue_hint_];
      if (hint.live && hint.when == when) return enqueue_hint_;
    }
    std::uint32_t slot;
    if (spare_slot_ != kNoBucket) {
      slot = spare_slot_;
      spare_slot_ = kNoBucket;
    } else if (!free_buckets_.empty()) {
      slot = free_buckets_.back();
      free_buckets_.pop_back();
    } else {
      slot = grow_buckets();
    }
    buckets_[slot].when = when;
    buckets_[slot].seq = seq_;
    buckets_[slot].live = true;
    // Keep the bucket on deck instead of in the heap when it is provably
    // the minimum of all non-epoch pending buckets; see ondeck_slot_. Ties
    // go to the heap: the new bucket's larger creation seq sorts it after
    // the incumbent, so (when, seq) order is preserved either way.
    if (ondeck_slot_ == kNoBucket &&
        (times_.empty() || when < times_.top().when)) {
      // top() may be stale, but a stale ref's timestamp is a lower bound
      // for every live entry behind it, so beating it is conclusive.
      ondeck_slot_ = slot;
    } else {
      park_bucket(slot, when);  // out of line: keeps the heap-push template
                                // code off this always-hot path
    }
    enqueue_hint_ = slot;
    return slot;
  }

  /// Registers a freshly created bucket in times_ (or swaps it with the
  /// on-deck bucket when it is strictly earlier). The cold half of
  /// bucket_for.
  void park_bucket(std::uint32_t slot, Cycles when);

  /// Appends a new TimeBucket slot (vector growth — cold).
  std::uint32_t grow_buckets();

  /// Hands out the next runnable handle in (when, seq) order, or nullptr.
  /// Drains the active epoch flat (no heap ops between same-time events),
  /// retiring it and popping the next timestamp off times_ when it runs
  /// dry. With `limited`, events after `limit` stay queued.
  std::coroutine_handle<> take_next(bool limited, Cycles limit);

  /// The cold tail of take_next: retires a drained epoch and opens the next
  /// bucket (on deck, or popped from the heap past stale entries),
  /// returning its first event.
  std::coroutine_handle<> take_next_cold(bool limited, Cycles limit);

  void retire_epoch();

  void dispatch(std::coroutine_handle<> handle);

  /// Called from FinalNotify::await_suspend when a top-level agent reaches
  /// its final suspend point.
  void note_finished(std::coroutine_handle<Process::promise_type> handle) {
    finished_.push_back(handle);
  }

  /// Destroys the agents recorded by note_finished: swap-removes each from
  /// `owned_` (patching the displaced entry's owned_index), then rethrows
  /// the first stored exception. O(finished) — independent of how many
  /// agents were ever spawned.
  void reap_finished();

  /// Declared first so it outlives everything else during destruction; the
  /// destructor body destroys the owned coroutine frames, which return
  /// their blocks here.
  FrameArena arena_;
  /// Heap entry: a pending timestamp and the bucket slot created for it.
  /// Revalidated at pop time (live, matching when AND creation seq) —
  /// cancel() can empty a bucket and recycle its slot, leaving stale
  /// entries that are skipped lazily; the seq check keeps a recycled slot's
  /// new tenant from being drained through an old entry out of order.
  struct TimeRef {
    Cycles when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const TimeRef& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  /// Epoch queue: a min-heap of (timestamp, creation seq) pairs plus one
  /// TimeBucket of handles per entry. Advancing time pops the earliest
  /// entry and drains its bucket as a flat run queue (the "epoch").
  /// Same-time buckets chain in creation order, so events still run in
  /// global (when, enqueue) order — the enqueue memo makes bursts of
  /// same-time events share one bucket, and an event enqueued at the
  /// epoch's own time lands either in the draining bucket (memo hit) or in
  /// a successor bucket drained at the same timestamp right after it;
  /// either way the dispatch order matches the old (when, seq) heap.
  std::priority_queue<TimeRef, std::vector<TimeRef>, std::greater<>> times_;
  std::vector<TimeBucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  /// On-deck fast path: the one bucket that is provably the global minimum
  /// among non-epoch pending buckets, held OUTSIDE the heap. A bucket lands
  /// here when it is created with the heap empty (any younger bucket sorts
  /// after it); it is demoted into the heap when a strictly earlier bucket
  /// appears. In the dominant serial regime — each dispatch enqueues one
  /// event at a strictly later time — every epoch transition is
  /// retire + open-on-deck with zero heap traffic, which is what keeps
  /// scheduler.dispatch near the pre-epoch-queue cost.
  static constexpr std::uint32_t kNoBucket = ~std::uint32_t{0};
  std::uint32_t ondeck_slot_ = kNoBucket;
  /// One-slot fast free list in front of free_buckets_: the fused
  /// retire+open rotation parks the retired slot here and the very next
  /// bucket_for reclaims it, skipping the vector round trip.
  std::uint32_t spare_slot_ = kNoBucket;
  /// One-slot memo: the most recently created bucket, checked first on
  /// every enqueue. Always the newest bucket for its timestamp (creation is
  /// the only assignment), so a memo hit never appends behind a younger
  /// same-time bucket.
  std::uint32_t enqueue_hint_ = 0;
  std::uint32_t epoch_slot_ = 0;  ///< draining bucket, when epoch_active_
  std::size_t epoch_pos_ = 0;     ///< next undispatched entry in the epoch
  bool epoch_active_ = false;
  std::size_t pending_ = 0;  ///< queued, not-yet-dispatched events
  std::vector<std::coroutine_handle<Process::promise_type>> owned_;
  std::vector<std::coroutine_handle<Process::promise_type>> finished_;
  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  obs::Counter spawned_;
  obs::Counter scheduled_;
  obs::Counter dispatched_;
};

/// Awaitable that re-enters the scheduler and resumes at `when`.
struct WakeAt {
  Scheduler& scheduler;
  Cycles when;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) { scheduler.enqueue(h, when); }
  void await_resume() const noexcept {}
};

}  // namespace meecc::sim
