#include "sim/system.h"

#include "common/check.h"

namespace meecc::sim {

System::System(const SystemConfig& config)
    : config_(config),
      rng_(config.seed),
      map_(config.address_map),
      dram_(config.dram, rng_.fork()),
      hierarchy_(config.hierarchy, config.cores, rng_.fork()),
      mee_(std::make_unique<mee::MeeEngine>(map_, memory_, config.mee,
                                            rng_.fork())),
      epc_allocator_(map_, config.epc_placement, rng_.fork()),
      general_allocator_(map_) {
  MEECC_CHECK(config.cores > 0);
  MEECC_CHECK(config.clock_ghz > 0.0);
}

void System::check_mode(CpuMode mode, PhysAddr paddr) const {
  const auto kind = map_.classify(paddr);
  MEECC_CHECK_MSG(kind != mem::RegionKind::kMeeMetadata,
                  "software cannot address MEE metadata directly");
  if (kind == mem::RegionKind::kProtectedData && mode != CpuMode::kEnclave) {
    throw ModeViolation(
        "non-enclave access to the protected data region (SGX aborts these)");
  }
}

AccessResult System::do_read(CoreId core, CpuMode mode,
                             const mem::VirtualAddressSpace& vas, VirtAddr addr,
                             Cycles now) {
  const PhysAddr paddr = vas.translate(addr);
  check_mode(mode, paddr);

  AccessResult result;
  const auto hier = hierarchy_.access(core, paddr);
  result.cache_level = hier.level;
  result.latency = hier.lookup_latency;
  if (hier.level != cache::HitLevel::kMemory) {
    // On-chip hit: served from the CPU hierarchy, the MEE never sees it
    // (that is why the attack needs clflush — paper §3 challenge 1).
    result.data = memory_.read_line(paddr);
    if (map_.classify(paddr) == mem::RegionKind::kProtectedData &&
        mee_->config().functional_crypto) {
      // The hierarchy holds plaintext; model that by decrypting on the fly.
      mem::Line plain;
      // Reading through the MEE here would disturb its cache; peek instead.
      const std::uint64_t version = mee_->version_counter(paddr);
      const auto chunk_line = paddr.line_base();
      if (version == 0) {
        plain.fill(0);
        result.data = plain;
      } else {
        crypto::LineCipher cipher(mee_->config().data_key);
        result.data =
            cipher.decrypt(memory_.read_line(paddr), chunk_line.raw, version);
      }
    }
    return result;
  }

  result.latency += dram_.access_latency(now);
  if (map_.classify(paddr) == mem::RegionKind::kProtectedData) {
    const auto mee_result = mee_->read_line(core, paddr, &result.data, now);
    result.mee_level = mee_result.stop_level;
    result.latency += mee_result.extra_latency;
  } else {
    result.data = memory_.read_line(paddr);
  }
  return result;
}

AccessResult System::do_write(CoreId core, CpuMode mode,
                              const mem::VirtualAddressSpace& vas,
                              VirtAddr addr, const mem::Line& data,
                              Cycles now) {
  const PhysAddr paddr = vas.translate(addr);
  check_mode(mode, paddr);

  AccessResult result;
  // Write-allocate: the line is brought into the hierarchy either way; the
  // store itself retires quickly, but for protected lines the writeback
  // (modelled synchronously) pays the MEE update path.
  const auto hier = hierarchy_.access(core, paddr);
  result.cache_level = hier.level;
  result.latency = hier.lookup_latency;
  if (hier.level == cache::HitLevel::kMemory)
    result.latency += dram_.access_latency(now);

  if (map_.classify(paddr) == mem::RegionKind::kProtectedData) {
    const auto mee_result = mee_->write_line(core, paddr, data, now);
    result.mee_level = mee_result.stop_level;
    result.latency += mee_result.extra_latency;
  } else {
    memory_.write_line(paddr, data);
  }
  result.data = data;
  return result;
}

Cycles System::do_clflush(const mem::VirtualAddressSpace& vas, VirtAddr addr) {
  const PhysAddr paddr = vas.translate(addr);
  return hierarchy_.clflush(paddr);
}

double System::bytes_per_second(double bits_per_cycle) const {
  return bits_per_cycle * config_.clock_ghz * 1e9 / 8.0;
}

}  // namespace meecc::sim
