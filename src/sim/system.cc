#include "sim/system.h"

#include "common/check.h"
#include "obs/scope.h"

namespace meecc::sim {

System::System(const SystemConfig& config)
    : config_(config),
      rng_(config.seed),
      map_(config.address_map),
      dram_(config.dram, rng_.fork()),
      hierarchy_(config.hierarchy, config.cores, rng_.fork(), &hub_),
      mee_(std::make_unique<mee::MeeEngine>(map_, memory_, config.mee,
                                            rng_.fork(), &hub_)),
      peek_cipher_(config.mee.data_key, config.mee.aes_backend),
      epc_allocator_(map_, config.epc_placement, rng_.fork()),
      general_allocator_(map_) {
  MEECC_CHECK(config.cores > 0);
  MEECC_CHECK(config.clock_ghz > 0.0);
  scheduler_.set_hub(&hub_);
  peek_cipher_.set_pad_cache_enabled(config.mee.pad_cache);
  peek_cipher_.set_pad_counters(hub_.registry().counter("crypto.pad", "hit"),
                                hub_.registry().counter("crypto.pad", "miss"));
  auto sys = hub_.registry().group("sys");
  reads_ = sys.counter("reads");
  writes_ = sys.counter("writes");
  clflushes_ = sys.counter("clflushes");
  auto dram = hub_.registry().group("dram");
  dram_reads_ = dram.counter("reads");
  dram_protected_reads_ = dram.counter("protected_reads");
  if (auto* scope = obs::TrialScope::current())
    hub_.set_trace_sink(scope->trace_sink());
}

System::~System() {
  if (auto* scope = obs::TrialScope::current()) scope->absorb(hub_.registry());
}

void System::check_mode(CpuMode mode, PhysAddr paddr) const {
  const auto kind = map_.classify(paddr);
  MEECC_CHECK_MSG(kind != mem::RegionKind::kMeeMetadata,
                  "software cannot address MEE metadata directly");
  if (kind == mem::RegionKind::kProtectedData && mode != CpuMode::kEnclave) {
    throw ModeViolation(
        "non-enclave access to the protected data region (SGX aborts these)");
  }
}

AccessResult System::do_read(CoreId core, CpuMode mode,
                             const mem::VirtualAddressSpace& vas, VirtAddr addr,
                             Cycles now) {
  const PhysAddr paddr = vas.translate(addr);
  check_mode(mode, paddr);

  AccessResult result;
  reads_.inc();
  const auto hier = hierarchy_.access(core, paddr, now);
  result.cache_level = hier.level;
  result.latency = hier.lookup_latency;
  if (hier.level != cache::HitLevel::kMemory) {
    // On-chip hit: served from the CPU hierarchy, the MEE never sees it
    // (that is why the attack needs clflush — paper §3 challenge 1).
    if (map_.classify(paddr) == mem::RegionKind::kProtectedData &&
        mee_->config().functional_crypto) {
      // The hierarchy holds plaintext; model that by decrypting on the fly.
      // Reading through the MEE here would disturb its cache; peek instead.
      const std::uint64_t version = mee_->version_counter(paddr);
      const auto chunk_line = paddr.line_base();
      if (version == 0) {
        mem::Line plain;
        plain.fill(0);
        result.data = plain;
      } else {
        result.data = peek_cipher_.decrypt(memory_.read_line(paddr),
                                           chunk_line.raw, version);
      }
    } else {
      result.data = memory_.read_line(paddr);
    }
    if (hub_.tracing())
      hub_.trace({.cycle = now,
                  .component = obs::Component::kSystem,
                  .core = core.value,
                  .addr = paddr.raw,
                  .kind = "read",
                  .outcome = cache::to_string(hier.level),
                  .value = static_cast<std::int64_t>(result.latency)});
    return result;
  }

  result.latency += dram_.access_latency(now);
  dram_reads_.inc();
  if (map_.classify(paddr) == mem::RegionKind::kProtectedData) {
    dram_protected_reads_.inc();
    const auto mee_result = mee_->read_line(core, paddr, &result.data, now);
    result.mee_level = mee_result.stop_level;
    result.latency += mee_result.extra_latency;
  } else {
    result.data = memory_.read_line(paddr);
  }
  if (hub_.tracing())
    hub_.trace({.cycle = now,
                .component = obs::Component::kSystem,
                .core = core.value,
                .addr = paddr.raw,
                .kind = "read",
                .outcome = result.mee_level ? mee::to_string(*result.mee_level)
                                            : std::string_view{"DRAM"},
                .value = static_cast<std::int64_t>(result.latency)});
  return result;
}

AccessResult System::do_write(CoreId core, CpuMode mode,
                              const mem::VirtualAddressSpace& vas,
                              VirtAddr addr, const mem::Line& data,
                              Cycles now) {
  const PhysAddr paddr = vas.translate(addr);
  check_mode(mode, paddr);

  AccessResult result;
  writes_.inc();
  // Write-allocate: the line is brought into the hierarchy either way; the
  // store itself retires quickly, but for protected lines the writeback
  // (modelled synchronously) pays the MEE update path.
  const auto hier = hierarchy_.access(core, paddr, now);
  result.cache_level = hier.level;
  result.latency = hier.lookup_latency;
  if (hier.level == cache::HitLevel::kMemory) {
    result.latency += dram_.access_latency(now);
    dram_reads_.inc();  // write-allocate fill
  }

  if (map_.classify(paddr) == mem::RegionKind::kProtectedData) {
    const auto mee_result = mee_->write_line(core, paddr, data, now);
    result.mee_level = mee_result.stop_level;
    result.latency += mee_result.extra_latency;
  } else {
    memory_.write_line(paddr, data);
  }
  result.data = data;
  if (hub_.tracing())
    hub_.trace({.cycle = now,
                .component = obs::Component::kSystem,
                .core = core.value,
                .addr = paddr.raw,
                .kind = "write",
                .outcome = result.mee_level ? mee::to_string(*result.mee_level)
                                            : cache::to_string(hier.level),
                .value = static_cast<std::int64_t>(result.latency)});
  return result;
}

Cycles System::do_clflush(const mem::VirtualAddressSpace& vas, VirtAddr addr) {
  const PhysAddr paddr = vas.translate(addr);
  clflushes_.inc();
  const Cycles latency = hierarchy_.clflush(paddr);
  if (hub_.tracing())
    hub_.trace({.cycle = scheduler_.now(),
                .component = obs::Component::kSystem,
                .core = 0,
                .addr = paddr.raw,
                .kind = "clflush",
                .outcome = "done",
                .value = static_cast<std::int64_t>(latency)});
  return latency;
}

SystemSnapshot System::snapshot() {
  MEECC_CHECK_MSG(scheduler_.idle() && scheduler_.live_processes() == 0,
                  "snapshot needs a quiesced scheduler");
  return SystemSnapshot{.memory = memory_.snapshot(),
                        .dram = dram_.state(),
                        .hierarchy = hierarchy_.export_state(),
                        .mee = mee_->export_state(),
                        .peek_pads = peek_cipher_.export_pad_state(),
                        .epc_cursor = epc_allocator_.cursor(),
                        .general_cursor = general_allocator_.cursor(),
                        .rng = rng_,
                        .sched_now = scheduler_.now(),
                        .sched_seq = scheduler_.event_seq(),
                        .counters = hub_.registry().capture()};
}

void System::restore(const SystemSnapshot& snap) {
  memory_.restore(snap.memory);
  dram_.restore(snap.dram);
  hierarchy_.import_state(snap.hierarchy);
  mee_->import_state(snap.mee);
  peek_cipher_.import_pad_state(snap.peek_pads);
  epc_allocator_.restore_cursor(snap.epc_cursor);
  general_allocator_.restore_cursor(snap.general_cursor);
  rng_ = snap.rng;
  scheduler_.restore_clock(snap.sched_now, snap.sched_seq);
  hub_.registry().restore(snap.counters);
  last_restored_ = &snap;
  counter_epoch_ = hub_.registry().baseline_epoch();
}

void System::restore_into(const SystemSnapshot& snap) {
  const bool counters_current =
      last_restored_ == &snap &&
      counter_epoch_ == hub_.registry().baseline_epoch();
  memory_.restore(snap.memory);
  dram_.restore(snap.dram);
  hierarchy_.import_state(snap.hierarchy);
  mee_->import_state(snap.mee);
  peek_cipher_.import_pad_state(snap.peek_pads);
  epc_allocator_.restore_cursor(snap.epc_cursor);
  general_allocator_.restore_cursor(snap.general_cursor);
  rng_ = snap.rng;
  scheduler_.restore_clock(snap.sched_now, snap.sched_seq);
  if (counters_current) {
    // The registry's baseline is already this snapshot's counter image
    // (nothing reset it since the last restore from `snap`), so rewinding
    // the dirty set — O(counters the trial touched) — replaces the full
    // O(all slots) string-keyed restore.
    hub_.registry().restore_to_baseline();
  } else {
    hub_.registry().restore(snap.counters);
    last_restored_ = &snap;
  }
  counter_epoch_ = hub_.registry().baseline_epoch();
}

std::unique_ptr<System> System::fork(const SystemConfig& config,
                                     const SystemSnapshot& snap) {
  auto system = std::make_unique<System>(config);
  system->restore(snap);
  return system;
}

double System::bytes_per_second(double bits_per_cycle) const {
  return bits_per_cycle * config_.clock_ghz * 1e9 / 8.0;
}

}  // namespace meecc::sim
