// Actor: the per-agent execution context — a core binding, a CPU mode, a
// virtual address space, and a local clock — plus the awaitable "ISA" the
// agent coroutines program against (read / write / clflush / mfence / timers
// / busy-wait).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "mem/page_table.h"
#include "sim/des.h"
#include "sim/system.h"
#include "sim/timer.h"

namespace meecc::sim {

class Actor;

/// Awaitable performing one memory operation. Suspends so the scheduler can
/// order it against other agents, then executes at this actor's local time.
class MemOpAwaitable {
 public:
  enum class Op { kRead, kWrite, kFlush };

  MemOpAwaitable(Actor& actor, Op op, VirtAddr addr, const mem::Line* data);

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  AccessResult await_resume();

 private:
  Actor& actor_;
  Op op_;
  VirtAddr addr_;
  mem::Line data_{};
};

class Actor {
 public:
  Actor(System& system, CoreId core, CpuMode mode);

  // -- awaitable operations (must be co_await'ed) ---------------------------
  MemOpAwaitable read(VirtAddr addr) {
    return {*this, MemOpAwaitable::Op::kRead, addr, nullptr};
  }
  MemOpAwaitable write(VirtAddr addr, const mem::Line& data) {
    return {*this, MemOpAwaitable::Op::kWrite, addr, &data};
  }
  MemOpAwaitable clflush(VirtAddr addr) {
    return {*this, MemOpAwaitable::Op::kFlush, addr, nullptr};
  }
  /// Yields to the scheduler and resumes once `when` is the global minimum.
  WakeAt sleep_until(Cycles when);
  WakeAt sleep_for(Cycles duration) { return sleep_until(now_ + duration); }

  // -- plain operations (local clock only, no scheduler round-trip) ---------
  /// Memory fence: ordering is implicit in the DES model; costs cycles.
  void mfence();
  /// Timestamp read through `timer`; advances the clock by the read cost.
  /// Native rdtsc in enclave mode throws ModeViolation (SGX v1, paper §3.4).
  Cycles read_timer(const TimerModel& timer);
  /// Spin until the local clock reaches `target` (no yield needed: pure
  /// local work cannot affect other agents).
  void busy_wait_until(Cycles target);

  Cycles now() const { return now_; }
  void advance(Cycles cycles) { now_ += cycles; }
  /// Forces the local clock — snapshot restore only, the one place time may
  /// move backwards (recycling a bed rewinds its actors to the snapshot).
  void restore_clock(Cycles now) { now_ = now; }

  System& system() { return system_; }
  Scheduler& scheduler() { return system_.scheduler(); }
  CoreId core() const { return core_; }
  CpuMode mode() const { return mode_; }
  mem::VirtualAddressSpace& vas() { return vas_; }
  const mem::VirtualAddressSpace& vas() const { return vas_; }
  Rng& rng() { return rng_; }

 private:
  friend class MemOpAwaitable;

  System& system_;
  CoreId core_;
  CpuMode mode_;
  mem::VirtualAddressSpace vas_;
  Cycles now_ = 0;
  Rng rng_;
};

}  // namespace meecc::sim
