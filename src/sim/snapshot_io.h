// Snapshot wire format: canonical byte serialization of SystemSnapshot.
//
// A SystemSnapshot holds value copies of every mutable component (PR 5/6),
// but some of those values cannot be default-constructed — a SetAssocCache
// needs its geometry and policy stack, the MAC pad state is type-erased
// behind MacScheme. So both directions borrow a "shape" System built from
// the identical config: encode reads the snapshot's payload through the
// shape's component types, and decode starts from shape.snapshot() (every
// component correctly constructed) and overwrites the mutable payload in
// place via the per-component encode_state/decode_state hooks.
//
// Canonical means byte-identical across hosts and runs for equal state:
// hash-map contents (DRAM image) are sorted before writing, doubles ride as
// bit patterns, and nothing host-dependent (pointers, capacities) is
// written. The setup store hashes these bytes, and the determinism tests
// compare them directly.
//
// kSnapshotFormatVersion MUST be bumped whenever any component's encoding
// changes — including the per-component hooks in cache/, crypto/, mee/ —
// so stale files are rejected with FrameStatus::kBadVersion instead of
// misdecoding. See DESIGN.md "Snapshot wire format".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "sim/system.h"

namespace meecc::sim {

/// "MEECSNAP" — identifies a framed standalone snapshot file.
inline constexpr std::uint64_t kSnapshotMagic = 0x4d45454353'4e4150ULL;
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Appends the canonical encoding of `snap` to `w`. `shape` must be built
/// from the donor's config; its MAC pad cache is used as scratch.
void encode_snapshot(io::Writer& w, System& shape, const SystemSnapshot& snap);

/// Reads one snapshot from `r` (the inverse of encode_snapshot). Throws
/// io::DecodeError on any structural mismatch. `shape` must be built from
/// the same config the snapshot was encoded against.
SystemSnapshot decode_snapshot(io::Reader& r, System& shape);

/// Framed standalone snapshot file: write_frame(kSnapshotMagic,
/// kSnapshotFormatVersion, config_hash, encode_snapshot(...)).
std::string serialize_snapshot(System& shape, const SystemSnapshot& snap,
                               std::uint64_t config_hash);

/// Validates the frame (distinct FrameStatus per corruption mode) and
/// decodes the payload. On any non-kOk status returns that status and no
/// snapshot; a decode failure inside a valid frame throws io::DecodeError.
struct SnapshotReadResult {
  io::FrameStatus status = io::FrameStatus::kTruncated;
  std::unique_ptr<SystemSnapshot> snapshot;  ///< set only when status == kOk
};
SnapshotReadResult deserialize_snapshot(System& shape, std::string_view bytes,
                                        std::uint64_t expected_config_hash);

}  // namespace meecc::sim
