#include "sim/actor.h"

#include "common/check.h"

namespace meecc::sim {

MemOpAwaitable::MemOpAwaitable(Actor& actor, Op op, VirtAddr addr,
                               const mem::Line* data)
    : actor_(actor), op_(op), addr_(addr) {
  if (data) data_ = *data;
}

void MemOpAwaitable::await_suspend(std::coroutine_handle<> handle) {
  actor_.scheduler().enqueue(handle, actor_.now());
}

AccessResult MemOpAwaitable::await_resume() {
  System& system = actor_.system();
  AccessResult result;
  switch (op_) {
    case Op::kRead:
      result = system.do_read(actor_.core(), actor_.mode(), actor_.vas(),
                              addr_, actor_.now());
      break;
    case Op::kWrite:
      result = system.do_write(actor_.core(), actor_.mode(), actor_.vas(),
                               addr_, data_, actor_.now());
      break;
    case Op::kFlush:
      result.latency = system.do_clflush(actor_.vas(), addr_);
      break;
  }
  actor_.advance(result.latency);
  return result;
}

Actor::Actor(System& system, CoreId core, CpuMode mode)
    : system_(system), core_(core), mode_(mode), rng_(system.fork_rng()) {
  MEECC_CHECK(core.value < system.config().cores);
}

WakeAt Actor::sleep_until(Cycles when) {
  if (when > now_) now_ = when;
  return WakeAt{scheduler(), now_};
}

void Actor::mfence() { now_ += system_.config().hierarchy.mfence_latency; }

Cycles Actor::read_timer(const TimerModel& timer) {
  switch (timer.kind) {
    case TimerKind::kNativeRdtsc: {
      if (mode_ == CpuMode::kEnclave)
        throw ModeViolation("rdtsc is not available in enclave mode (SGX v1)");
      now_ += timer.read_cost;
      return now_;
    }
    case TimerKind::kOcall: {
      // The OCALL round trip dominates; the reading itself lands somewhere
      // inside the window, modelled as the midpoint.
      const auto cost = static_cast<Cycles>(
          rng_.next_in(static_cast<std::int64_t>(timer.ocall_cost_min),
                       static_cast<std::int64_t>(timer.ocall_cost_max)));
      const Cycles value = now_ + cost / 2;
      now_ += cost;
      return value;
    }
    case TimerKind::kSharedClock: {
      // The mailbox holds the writer's most recent rdtsc: our reading is
      // stale by the phase within the writer period.
      const Cycles value = now_ - now_ % timer.writer_period;
      now_ += timer.read_cost;
      return value;
    }
  }
  MEECC_CHECK_MSG(false, "bad timer kind");
  return 0;
}

void Actor::busy_wait_until(Cycles target) {
  if (target > now_) now_ = target;
}

}  // namespace meecc::sim
