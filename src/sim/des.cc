#include "sim/des.h"

#include <algorithm>

#include "common/check.h"

namespace meecc::sim {

Process::~Process() {
  // A Process still holding its handle was never spawned; destroy it here.
  if (handle_) handle_.destroy();
}

void Process::promise_type::FinalNotify::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  // Leaves the coroutine suspended at its final suspend point; the
  // scheduler reclaims it (and surfaces any stored exception) right after
  // the resume() that got us here returns.
  if (Scheduler* scheduler = h.promise().scheduler)
    scheduler->note_finished(h);
}

Scheduler::~Scheduler() {
  for (auto handle : owned_)
    if (handle) handle.destroy();
}

void Scheduler::set_hub(obs::Hub* hub) {
  if (hub == nullptr) {
    spawned_ = scheduled_ = dispatched_ = obs::Counter{};
    return;
  }
  auto group = hub->registry().group("des");
  spawned_ = group.counter("spawned");
  scheduled_ = group.counter("scheduled");
  dispatched_ = group.counter("dispatched");
}

ProcessHandle Scheduler::spawn(Process process, Cycles start) {
  MEECC_CHECK(process.handle_);
  auto handle = process.handle_;
  process.handle_ = nullptr;  // ownership moves to the scheduler
  handle.promise().scheduler = this;
  handle.promise().owned_index = owned_.size();
  owned_.push_back(handle);
  spawned_.inc();
  enqueue(handle, start);
  return ProcessHandle{handle};
}

bool Scheduler::cancel(ProcessHandle handle) {
  const auto target = handle.handle_;
  if (!target) return false;
  // Staleness check by address only — a stale handle's frame is destroyed,
  // so its promise must not be read. O(live agents), which is tiny (the
  // only cancel site is the environment-agent quiesce).
  const auto it = std::find(owned_.begin(), owned_.end(), target);
  if (it == owned_.end()) return false;
  const auto index = static_cast<std::size_t>(it - owned_.begin());
  for (const auto finished : finished_)
    MEECC_CHECK_MSG(finished != target, "cancel of an agent mid-completion");
  // Drop the agent's pending events from every bucket. Compaction keeps
  // the survivors' relative order, so sibling ordering is unchanged and no
  // new sequence numbers are consumed. In the draining epoch only the
  // not-yet-dispatched tail is pending — entries before epoch_pos_ already
  // ran (and may reference destroyed frames, so they must not be compared).
  for (std::uint32_t slot = 0; slot < buckets_.size(); ++slot) {
    TimeBucket& bucket = buckets_[slot];
    if (!bucket.live) continue;
    const bool is_epoch = epoch_active_ && slot == epoch_slot_;
    std::size_t out = is_epoch ? epoch_pos_ : 0;
    for (std::size_t i = out; i < bucket.ready.size(); ++i) {
      if (bucket.ready[i].address() != target.address())
        bucket.ready[out++] = bucket.ready[i];
      else
        --pending_;
    }
    bucket.ready.resize(out);
    // An emptied non-epoch bucket is recycled here; its timestamp stays in
    // times_ and is skipped lazily — except the on-deck bucket, which has
    // no heap entry to go stale and must be dropped eagerly. The epoch
    // bucket retires normally.
    if (!is_epoch && bucket.ready.empty()) {
      bucket.live = false;
      if (slot == ondeck_slot_) ondeck_slot_ = kNoBucket;
      free_buckets_.push_back(slot);
    }
  }
  owned_[index] = owned_.back();
  owned_[index].promise().owned_index = index;
  owned_.pop_back();
  target.destroy();
  return true;
}

void Scheduler::restore_clock(Cycles now, std::uint64_t seq) {
  MEECC_CHECK_MSG(pending_ == 0 && owned_.empty() && finished_.empty(),
                  "restore_clock needs a quiesced scheduler");
  MEECC_CHECK_MSG(ondeck_slot_ == kNoBucket,
                  "a quiesced scheduler cannot hold an on-deck bucket");
  now_ = now;
  seq_ = seq;
}

void Scheduler::park_bucket(std::uint32_t slot, Cycles when) {
  if (ondeck_slot_ != kNoBucket && when < buckets_[ondeck_slot_].when) {
    // The new bucket preempts the on-deck one (strictly earlier beats the
    // older creation seq); the demoted incumbent re-enters the heap, where
    // it still precedes every existing entry.
    const TimeBucket& old = buckets_[ondeck_slot_];
    times_.push(TimeRef{old.when, old.seq, ondeck_slot_});
    ondeck_slot_ = slot;
  } else {
    times_.push(TimeRef{when, buckets_[slot].seq, slot});
  }
}

std::uint32_t Scheduler::grow_buckets() {
  const auto slot = static_cast<std::uint32_t>(buckets_.size());
  buckets_.emplace_back();
  return slot;
}

void Scheduler::retire_epoch() {
  TimeBucket& bucket = buckets_[epoch_slot_];
  bucket.ready.clear();  // keeps capacity for the slot's next tenant
  bucket.live = false;
  if (spare_slot_ == kNoBucket)
    spare_slot_ = epoch_slot_;
  else
    free_buckets_.push_back(epoch_slot_);
  epoch_active_ = false;
  epoch_pos_ = 0;
}

std::coroutine_handle<> Scheduler::take_next(bool limited, Cycles limit) {
  if (epoch_active_) {
    TimeBucket& bucket = buckets_[epoch_slot_];
    if (epoch_pos_ < bucket.ready.size()) {
      if (limited && bucket.when > limit) return nullptr;
      --pending_;
      return bucket.ready[epoch_pos_++];
    }
    // Fused rotate — the serial-simulation hot path: the drained epoch
    // retires and the on-deck bucket opens in one step, handing out its
    // first event with zero heap traffic.
    if (ondeck_slot_ != kNoBucket) {
      TimeBucket& next = buckets_[ondeck_slot_];
      if (!limited || next.when <= limit) {
        bucket.ready.clear();
        bucket.live = false;
        if (spare_slot_ == kNoBucket)
          spare_slot_ = epoch_slot_;
        else
          free_buckets_.push_back(epoch_slot_);
        epoch_slot_ = ondeck_slot_;
        ondeck_slot_ = kNoBucket;
        now_ = next.when;
        epoch_pos_ = 1;
        --pending_;
        return next.ready.front();
      }
    }
  }
  return take_next_cold(limited, limit);
}

std::coroutine_handle<> Scheduler::take_next_cold(bool limited, Cycles limit) {
  if (epoch_active_) retire_epoch();
  if (ondeck_slot_ != kNoBucket) {
    // By invariant the on-deck bucket precedes every heap entry, so it
    // opens as the next epoch without touching the heap.
    if (limited && buckets_[ondeck_slot_].when > limit) return nullptr;
    epoch_slot_ = ondeck_slot_;
    ondeck_slot_ = kNoBucket;
  } else {
    // Pop the next genuine entry (cancel() may have left stale ones — the
    // seq check also rejects a recycled slot's new tenant, which has its
    // own entry) and open its bucket as the new epoch.
    for (;;) {
      if (times_.empty()) return nullptr;
      const TimeRef next = times_.top();
      const TimeBucket& bucket = buckets_[next.slot];
      if (!bucket.live || bucket.when != next.when || bucket.seq != next.seq) {
        times_.pop();  // stale: emptied by cancel, slot possibly recycled
        continue;
      }
      if (limited && next.when > limit) return nullptr;
      times_.pop();
      epoch_slot_ = next.slot;
      break;
    }
  }
  // An opened bucket always holds at least one event (cancel frees emptied
  // buckets), so hand its first one out directly.
  TimeBucket& bucket = buckets_[epoch_slot_];
  epoch_active_ = true;
  now_ = bucket.when;
  epoch_pos_ = 1;
  --pending_;
  return bucket.ready.front();
}

void Scheduler::reap_finished() {
  while (!finished_.empty()) {
    const auto handle = finished_.back();
    finished_.pop_back();
    // Swap-remove from owned_; the displaced tail entry inherits the slot.
    const std::size_t index = handle.promise().owned_index;
    owned_[index] = owned_.back();
    owned_[index].promise().owned_index = index;
    owned_.pop_back();
    const std::exception_ptr ex = handle.promise().exception;
    handle.destroy();
    // Rethrow from the dispatch in which the agent died, matching the old
    // scan-based behaviour. Any other agents that finished in the same
    // dispatch stay queued in finished_ (and in owned_) and are reclaimed
    // on the next dispatch or at scheduler destruction.
    if (ex) std::rethrow_exception(ex);
  }
}

void Scheduler::dispatch(std::coroutine_handle<> handle) {
  // now_ was set when the handle's epoch was opened (all its events share
  // that timestamp). The caller holds the arena scope: installing it once
  // per run loop instead of per dispatch keeps the two thread-local writes
  // off the per-event path.
  dispatched_.inc();
  handle.resume();
  if (!finished_.empty()) reap_finished();
}

std::uint64_t Scheduler::run_until(Cycles until) {
  // Child Task frames created while agents run allocate (and freed frames
  // recycle) through this scheduler's arena.
  FrameArena::Scope scope(&arena_);
  std::uint64_t dispatched = 0;
  while (const auto handle = take_next(/*limited=*/true, until)) {
    dispatch(handle);
    ++dispatched;
  }
  return dispatched;
}

bool Scheduler::step() {
  const auto handle = take_next(/*limited=*/false, 0);
  if (!handle) return false;
  FrameArena::Scope scope(&arena_);
  dispatch(handle);
  return true;
}

std::uint64_t Scheduler::run_to_completion() {
  FrameArena::Scope scope(&arena_);
  std::uint64_t dispatched = 0;
  while (const auto handle = take_next(/*limited=*/false, 0)) {
    dispatch(handle);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace meecc::sim
