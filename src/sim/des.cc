#include "sim/des.h"

#include <algorithm>

#include "common/check.h"

namespace meecc::sim {

Process::~Process() {
  // A Process still holding its handle was never spawned; destroy it here.
  if (handle_) handle_.destroy();
}

void Process::promise_type::FinalNotify::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  // Leaves the coroutine suspended at its final suspend point; the
  // scheduler reclaims it (and surfaces any stored exception) right after
  // the resume() that got us here returns.
  if (Scheduler* scheduler = h.promise().scheduler)
    scheduler->note_finished(h);
}

Scheduler::~Scheduler() {
  for (auto handle : owned_)
    if (handle) handle.destroy();
}

void Scheduler::set_hub(obs::Hub* hub) {
  if (hub == nullptr) {
    spawned_ = scheduled_ = dispatched_ = obs::Counter{};
    return;
  }
  auto group = hub->registry().group("des");
  spawned_ = group.counter("spawned");
  scheduled_ = group.counter("scheduled");
  dispatched_ = group.counter("dispatched");
}

ProcessHandle Scheduler::spawn(Process process, Cycles start) {
  MEECC_CHECK(process.handle_);
  auto handle = process.handle_;
  process.handle_ = nullptr;  // ownership moves to the scheduler
  handle.promise().scheduler = this;
  handle.promise().owned_index = owned_.size();
  owned_.push_back(handle);
  spawned_.inc();
  enqueue(handle, start);
  return ProcessHandle{handle};
}

bool Scheduler::cancel(ProcessHandle handle) {
  const auto target = handle.handle_;
  if (!target) return false;
  // Staleness check by address only — a stale handle's frame is destroyed,
  // so its promise must not be read. O(live agents), which is tiny (the
  // only cancel site is the environment-agent quiesce).
  const auto it = std::find(owned_.begin(), owned_.end(), target);
  if (it == owned_.end()) return false;
  const auto index = static_cast<std::size_t>(it - owned_.begin());
  for (const auto finished : finished_)
    MEECC_CHECK_MSG(finished != target, "cancel of an agent mid-completion");
  // Drop the agent's pending events from every bucket. Compaction keeps
  // the survivors' relative order, so sibling ordering is unchanged and no
  // new sequence numbers are consumed. In the draining epoch only the
  // not-yet-dispatched tail is pending — entries before epoch_pos_ already
  // ran (and may reference destroyed frames, so they must not be compared).
  for (std::uint32_t slot = 0; slot < buckets_.size(); ++slot) {
    TimeBucket& bucket = buckets_[slot];
    if (!bucket.live) continue;
    const bool is_epoch = epoch_active_ && slot == epoch_slot_;
    std::size_t out = is_epoch ? epoch_pos_ : 0;
    for (std::size_t i = out; i < bucket.ready.size(); ++i) {
      if (bucket.ready[i].address() != target.address())
        bucket.ready[out++] = bucket.ready[i];
      else
        --pending_;
    }
    bucket.ready.resize(out);
    // An emptied non-epoch bucket is recycled here; its timestamp stays in
    // times_ and is skipped lazily. The epoch bucket retires normally.
    if (!is_epoch && bucket.ready.empty()) {
      bucket.live = false;
      free_buckets_.push_back(slot);
    }
  }
  owned_[index] = owned_.back();
  owned_[index].promise().owned_index = index;
  owned_.pop_back();
  target.destroy();
  return true;
}

void Scheduler::restore_clock(Cycles now, std::uint64_t seq) {
  MEECC_CHECK_MSG(pending_ == 0 && owned_.empty() && finished_.empty(),
                  "restore_clock needs a quiesced scheduler");
  now_ = now;
  seq_ = seq;
}

std::uint32_t Scheduler::bucket_for(Cycles when) {
  // Memo hit: the previous enqueue's bucket is still live at this
  // timestamp. Miss: create a fresh bucket — no scan for an older
  // same-time bucket, because the heap's creation-seq tie-break drains
  // chained buckets in creation order anyway.
  if (enqueue_hint_ < buckets_.size()) {
    const TimeBucket& hint = buckets_[enqueue_hint_];
    if (hint.live && hint.when == when) return enqueue_hint_;
  }
  std::uint32_t slot;
  if (!free_buckets_.empty()) {
    slot = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  buckets_[slot].when = when;
  buckets_[slot].seq = seq_;
  buckets_[slot].live = true;
  times_.push(TimeRef{when, seq_, slot});
  enqueue_hint_ = slot;
  return slot;
}

void Scheduler::enqueue(std::coroutine_handle<> handle, Cycles when) {
  // Events never fire in the past: a stale clock is clamped to `now`.
  // seq_ still advances once per enqueue (snapshot/fork restores it), but
  // the value is no longer stored per event — bucket append order carries
  // the same tie-break.
  scheduled_.inc();
  ++seq_;
  buckets_[bucket_for(std::max(when, now_))].ready.push_back(handle);
  ++pending_;
}

void Scheduler::retire_epoch() {
  TimeBucket& bucket = buckets_[epoch_slot_];
  bucket.ready.clear();  // keeps capacity for the slot's next tenant
  bucket.live = false;
  free_buckets_.push_back(epoch_slot_);
  epoch_active_ = false;
  epoch_pos_ = 0;
}

std::coroutine_handle<> Scheduler::take_next(bool limited, Cycles limit) {
  for (;;) {
    if (epoch_active_) {
      TimeBucket& bucket = buckets_[epoch_slot_];
      if (epoch_pos_ < bucket.ready.size()) {
        if (limited && bucket.when > limit) return nullptr;
        --pending_;
        return bucket.ready[epoch_pos_++];
      }
      retire_epoch();
    }
    // Pop the next genuine entry (cancel() may have left stale ones — the
    // seq check also rejects a recycled slot's new tenant, which has its
    // own entry) and open its bucket as the new epoch.
    for (;;) {
      if (times_.empty()) return nullptr;
      const TimeRef next = times_.top();
      const TimeBucket& bucket = buckets_[next.slot];
      if (!bucket.live || bucket.when != next.when || bucket.seq != next.seq) {
        times_.pop();  // stale: emptied by cancel, slot possibly recycled
        continue;
      }
      if (limited && next.when > limit) return nullptr;
      times_.pop();
      epoch_slot_ = next.slot;
      break;
    }
    epoch_pos_ = 0;
    epoch_active_ = true;
    now_ = buckets_[epoch_slot_].when;
  }
}

void Scheduler::reap_finished() {
  while (!finished_.empty()) {
    const auto handle = finished_.back();
    finished_.pop_back();
    // Swap-remove from owned_; the displaced tail entry inherits the slot.
    const std::size_t index = handle.promise().owned_index;
    owned_[index] = owned_.back();
    owned_[index].promise().owned_index = index;
    owned_.pop_back();
    const std::exception_ptr ex = handle.promise().exception;
    handle.destroy();
    // Rethrow from the dispatch in which the agent died, matching the old
    // scan-based behaviour. Any other agents that finished in the same
    // dispatch stay queued in finished_ (and in owned_) and are reclaimed
    // on the next dispatch or at scheduler destruction.
    if (ex) std::rethrow_exception(ex);
  }
}

void Scheduler::dispatch(std::coroutine_handle<> handle) {
  // now_ was set when the handle's epoch was opened (all its events share
  // that timestamp).
  dispatched_.inc();
  // Child Task frames created while the agent runs allocate (and freed
  // frames recycle) through this scheduler's arena.
  FrameArena::Scope scope(&arena_);
  handle.resume();
  if (!finished_.empty()) reap_finished();
}

std::uint64_t Scheduler::run_until(Cycles until) {
  std::uint64_t dispatched = 0;
  while (const auto handle = take_next(/*limited=*/true, until)) {
    dispatch(handle);
    ++dispatched;
  }
  return dispatched;
}

bool Scheduler::step() {
  const auto handle = take_next(/*limited=*/false, 0);
  if (!handle) return false;
  dispatch(handle);
  return true;
}

std::uint64_t Scheduler::run_to_completion() {
  std::uint64_t dispatched = 0;
  while (const auto handle = take_next(/*limited=*/false, 0)) {
    dispatch(handle);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace meecc::sim
