#include "sim/des.h"

#include <algorithm>

#include "common/check.h"

namespace meecc::sim {

Process::~Process() {
  // A Process still holding its handle was never spawned; destroy it here.
  if (handle_) handle_.destroy();
}

void Process::promise_type::FinalNotify::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  // Leaves the coroutine suspended at its final suspend point; the
  // scheduler reclaims it (and surfaces any stored exception) right after
  // the resume() that got us here returns.
  if (Scheduler* scheduler = h.promise().scheduler)
    scheduler->note_finished(h);
}

Scheduler::~Scheduler() {
  for (auto handle : owned_)
    if (handle) handle.destroy();
}

void Scheduler::set_hub(obs::Hub* hub) {
  if (hub == nullptr) {
    spawned_ = scheduled_ = dispatched_ = obs::Counter{};
    return;
  }
  auto group = hub->registry().group("des");
  spawned_ = group.counter("spawned");
  scheduled_ = group.counter("scheduled");
  dispatched_ = group.counter("dispatched");
}

ProcessHandle Scheduler::spawn(Process process, Cycles start) {
  MEECC_CHECK(process.handle_);
  auto handle = process.handle_;
  process.handle_ = nullptr;  // ownership moves to the scheduler
  handle.promise().scheduler = this;
  handle.promise().owned_index = owned_.size();
  owned_.push_back(handle);
  spawned_.inc();
  enqueue(handle, start);
  return ProcessHandle{handle};
}

bool Scheduler::cancel(ProcessHandle handle) {
  const auto target = handle.handle_;
  if (!target) return false;
  // Staleness check by address only — a stale handle's frame is destroyed,
  // so its promise must not be read. O(live agents), which is tiny (the
  // only cancel site is the environment-agent quiesce).
  const auto it = std::find(owned_.begin(), owned_.end(), target);
  if (it == owned_.end()) return false;
  const auto index = static_cast<std::size_t>(it - owned_.begin());
  for (const auto finished : finished_)
    MEECC_CHECK_MSG(finished != target, "cancel of an agent mid-completion");
  // Drain the queue, dropping this agent's pending events; survivors keep
  // their original sequence numbers (re-pushing does not consume seq_).
  std::vector<Event> survivors;
  survivors.reserve(queue_.size());
  while (!queue_.empty()) {
    if (queue_.top().handle.address() != target.address())
      survivors.push_back(queue_.top());
    queue_.pop();
  }
  for (const Event& event : survivors) queue_.push(event);
  owned_[index] = owned_.back();
  owned_[index].promise().owned_index = index;
  owned_.pop_back();
  target.destroy();
  return true;
}

void Scheduler::restore_clock(Cycles now, std::uint64_t seq) {
  MEECC_CHECK_MSG(queue_.empty() && owned_.empty() && finished_.empty(),
                  "restore_clock needs a quiesced scheduler");
  now_ = now;
  seq_ = seq;
}

void Scheduler::enqueue(std::coroutine_handle<> handle, Cycles when) {
  // Events never fire in the past: a stale clock is clamped to `now`.
  scheduled_.inc();
  queue_.push(Event{std::max(when, now_), seq_++, handle});
}

void Scheduler::reap_finished() {
  while (!finished_.empty()) {
    const auto handle = finished_.back();
    finished_.pop_back();
    // Swap-remove from owned_; the displaced tail entry inherits the slot.
    const std::size_t index = handle.promise().owned_index;
    owned_[index] = owned_.back();
    owned_[index].promise().owned_index = index;
    owned_.pop_back();
    const std::exception_ptr ex = handle.promise().exception;
    handle.destroy();
    // Rethrow from the dispatch in which the agent died, matching the old
    // scan-based behaviour. Any other agents that finished in the same
    // dispatch stay queued in finished_ (and in owned_) and are reclaimed
    // on the next dispatch or at scheduler destruction.
    if (ex) std::rethrow_exception(ex);
  }
}

void Scheduler::dispatch(const Event& event) {
  now_ = event.when;
  dispatched_.inc();
  // Child Task frames created while the agent runs allocate (and freed
  // frames recycle) through this scheduler's arena.
  FrameArena::Scope scope(&arena_);
  event.handle.resume();
  if (!finished_.empty()) reap_finished();
}

std::uint64_t Scheduler::run_until(Cycles until) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    const Event event = queue_.top();
    queue_.pop();
    dispatch(event);
    ++dispatched;
  }
  return dispatched;
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  const Event event = queue_.top();
  queue_.pop();
  dispatch(event);
  return true;
}

std::uint64_t Scheduler::run_to_completion() {
  std::uint64_t dispatched = 0;
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    dispatch(event);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace meecc::sim
