#include "sim/des.h"

#include "common/check.h"

namespace meecc::sim {

Process::~Process() {
  // A Process still holding its handle was never spawned; destroy it here.
  if (handle_) handle_.destroy();
}

Scheduler::~Scheduler() {
  for (auto handle : owned_)
    if (handle) handle.destroy();
}

void Scheduler::set_hub(obs::Hub* hub) {
  if (hub == nullptr) {
    spawned_ = scheduled_ = dispatched_ = obs::Counter{};
    return;
  }
  auto group = hub->registry().group("des");
  spawned_ = group.counter("spawned");
  scheduled_ = group.counter("scheduled");
  dispatched_ = group.counter("dispatched");
}

void Scheduler::spawn(Process process, Cycles start) {
  MEECC_CHECK(process.handle_);
  auto handle = process.handle_;
  process.handle_ = nullptr;  // ownership moves to the scheduler
  owned_.push_back(handle);
  spawned_.inc();
  enqueue(handle, start);
}

void Scheduler::enqueue(std::coroutine_handle<> handle, Cycles when) {
  // Events never fire in the past: a stale clock is clamped to `now`.
  scheduled_.inc();
  queue_.push(Event{std::max(when, now_), seq_++, handle});
}

void Scheduler::raise_pending_agent_errors() {
  for (auto handle : owned_) {
    if (handle && handle.done()) {
      if (auto ex = handle.promise().exception) {
        handle.promise().exception = nullptr;
        std::rethrow_exception(ex);
      }
    }
  }
}

void Scheduler::dispatch(const Event& event) {
  now_ = event.when;
  dispatched_.inc();
  event.handle.resume();
  raise_pending_agent_errors();
}

std::uint64_t Scheduler::run_until(Cycles until) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    const Event event = queue_.top();
    queue_.pop();
    dispatch(event);
    ++dispatched;
  }
  return dispatched;
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  const Event event = queue_.top();
  queue_.pop();
  dispatch(event);
  return true;
}

std::uint64_t Scheduler::run_to_completion() {
  std::uint64_t dispatched = 0;
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    dispatch(event);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace meecc::sim
