// Timer models — the three ways Fig. 2 measures time on an SGX machine.
//
// (a) native rdtsc: exact, cheap, but NOT executable in enclave mode (SGX v1
//     faults it, paper §3 challenge 4);
// (b) OCALL timer: leave the enclave, rdtsc, re-enter — 8,000–15,000 cycles
//     of overhead per reading, useless for a ~300-cycle signal;
// (c) hyperthread shared clock: a sibling hyperthread outside the enclave
//     spins writing rdtsc to a non-enclave line the enclave reads directly
//     (~50 cycles); the reading is stale by up to one writer period.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace meecc::sim {

enum class TimerKind { kNativeRdtsc, kOcall, kSharedClock };

struct TimerModel {
  TimerKind kind = TimerKind::kNativeRdtsc;
  Cycles read_cost = 24;      ///< fixed cost (native, shared-clock)
  Cycles ocall_cost_min = 8000;
  Cycles ocall_cost_max = 15000;
  Cycles writer_period = 10;  ///< shared-clock staleness quantum
};

inline TimerModel native_rdtsc_timer() {
  return TimerModel{.kind = TimerKind::kNativeRdtsc, .read_cost = 24};
}

inline TimerModel ocall_timer() {
  return TimerModel{.kind = TimerKind::kOcall};
}

inline TimerModel shared_clock_timer() {
  return TimerModel{
      .kind = TimerKind::kSharedClock, .read_cost = 50, .writer_period = 10};
}

}  // namespace meecc::sim
