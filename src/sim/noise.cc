#include "sim/noise.h"

#include <cmath>

#include "common/check.h"

namespace meecc::sim {

VirtAddr map_general_buffer(Actor& actor, VirtAddr base, std::uint64_t bytes) {
  MEECC_CHECK(base.page_offset() == 0);
  MEECC_CHECK(bytes % kPageSize == 0);
  auto& allocator = actor.system().general_allocator();
  for (std::uint64_t off = 0; off < bytes; off += kPageSize)
    actor.vas().map_page(base + off, allocator.allocate_frame());
  return base;
}

Process memory_stressor(Actor& actor, StressorConfig config) {
  MEECC_CHECK(config.bytes >= kLineSize);
  const std::uint64_t lines = config.bytes / kLineSize;
  for (;;) {
    const VirtAddr target =
        config.base + actor.rng().next_below(lines) * kLineSize;
    co_await actor.read(target);
    if (actor.rng().chance(config.flush_probability))
      co_await actor.clflush(target);
    co_await actor.sleep_for(config.gap);
  }
}

Process mee_stride_walker(Actor& actor, StrideWalkerConfig config) {
  MEECC_CHECK(config.bytes >= config.stride);
  MEECC_CHECK(config.stride >= kLineSize);
  std::uint64_t lap = 0;
  std::uint64_t offset = 0;
  for (;;) {
    const VirtAddr target = config.base + offset;
    co_await actor.read(target);
    // Flush so the next lap reaches the MEE again instead of hitting in L1.
    co_await actor.clflush(target);
    offset += config.stride;
    if (offset + kLineSize > config.bytes) {
      // Shift the column by one 512 B chunk per lap so a large-stride walk
      // sweeps every versions-line alias family over time, as a real
      // program touching whole pages would.
      ++lap;
      offset = (lap * kChunkSize) % config.stride;
    }
    co_await actor.sleep_for(config.gap);
  }
}

Process background_activity(Actor& actor, BackgroundConfig config) {
  MEECC_CHECK(config.bytes >= kLineSize);
  const std::uint64_t lines = config.bytes / kLineSize;
  for (;;) {
    const VirtAddr target =
        config.base + actor.rng().next_below(lines) * kLineSize;
    co_await actor.read(target);
    co_await actor.clflush(target);
    // Exponential inter-arrival times around the configured mean.
    const double u = std::max(actor.rng().next_double(), 1e-12);
    const auto gap = static_cast<Cycles>(
        -std::log(u) * static_cast<double>(config.mean_gap));
    co_await actor.sleep_for(gap);
  }
}

}  // namespace meecc::sim
