// Noise agents for the Fig. 8 robustness environments, plus the low-rate
// background activity every environment carries (OS + SGX runtime enclave
// housekeeping — the source of the channel's residual ~1–2 % error floor).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/actor.h"

namespace meecc::sim {

/// Maps `bytes` of fresh general-region memory into the actor's address
/// space at `base` and returns `base` (convenience for noise buffers and
/// non-enclave scratch memory).
VirtAddr map_general_buffer(Actor& actor, VirtAddr base, std::uint64_t bytes);

/// stress-ng-like cache/memory stressor (Fig. 8b): random reads over a
/// general-region buffer, with occasional clflush, as fast as `gap` allows.
/// Never touches the protected region, so the MEE cache never sees it.
struct StressorConfig {
  VirtAddr base;
  std::uint64_t bytes = 0;
  Cycles gap = 120;
  double flush_probability = 0.5;
};
Process memory_stressor(Actor& actor, StressorConfig config);

/// Protected-region stride walker (Fig. 8c/d): a co-tenant enclave that
/// continuously loads fresh integrity-tree data through the MEE cache.
/// 512 B stride churns versions lines; 4 KB stride churns versions + L0.
struct StrideWalkerConfig {
  VirtAddr base;
  std::uint64_t bytes = 0;
  std::uint64_t stride = 512;
  Cycles gap = 400;
};
Process mee_stride_walker(Actor& actor, StrideWalkerConfig config);

/// Sparse protected-region accesses with exponential gaps — the ambient MEE
/// traffic present even in the "no noise" environment.
struct BackgroundConfig {
  VirtAddr base;
  std::uint64_t bytes = 0;
  Cycles mean_gap = 60000;
};
Process background_activity(Actor& actor, BackgroundConfig config);

}  // namespace meecc::sim
