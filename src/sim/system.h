// The simulated machine: cores × (L1,L2) + shared LLC + DRAM, with the MEE
// in front of the protected region, plus the DES scheduler that orders all
// agents' accesses.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/hierarchy.h"
#include "common/rng.h"
#include "common/types.h"
#include "mem/address_map.h"
#include "mem/dram.h"
#include "mem/frame_allocator.h"
#include "mem/page_table.h"
#include "mem/physical_memory.h"
#include "mee/engine.h"
#include "obs/hub.h"
#include "sim/des.h"

namespace meecc::sim {

struct SystemConfig {
  unsigned cores = 4;  ///< i7-6700K has 4 physical cores
  mem::AddressMapConfig address_map;
  mem::DramConfig dram;
  cache::HierarchyConfig hierarchy;
  mee::MeeConfig mee;
  mem::EpcPlacement epc_placement = mem::EpcPlacement::kContiguous;
  double clock_ghz = 4.2;  ///< for cycles ↔ seconds (bit-rate reporting)
  std::uint64_t seed = 42;
};

struct AccessResult {
  Cycles latency = 0;
  cache::HitLevel cache_level = cache::HitLevel::kMemory;
  /// Set only when the access reached DRAM inside the protected region.
  std::optional<mee::StopLevel> mee_level;
  mem::Line data{};
};

/// Raised when an agent violates an SGX mode rule (rdtsc in enclave mode,
/// non-enclave access to protected memory).
class ModeViolation : public std::logic_error {
 public:
  explicit ModeViolation(const std::string& what) : std::logic_error(what) {}
};

/// Full mutable machine state at a quiesce point: DRAM lines (shared
/// copy-on-write image, not a copy), cache arrays + PLRU bits, MEE state
/// (root counters, pad caches, occupancy, rekey phase), allocator cursors,
/// RNG streams, scheduler clock, and the counter baseline. Everything a
/// freshly built System with the same config needs to become observationally
/// identical to the donor. Cheap to hold and to fork from: the dominant
/// payload (DRAM) is a shared pointer.
struct SystemSnapshot {
  mem::PhysicalMemory::Image memory;
  mem::Dram::State dram;
  cache::Hierarchy::State hierarchy;
  mee::MeeEngine::State mee;
  crypto::PadCache<crypto::LineData> peek_pads;
  std::size_t epc_cursor = 0;
  PhysAddr general_cursor{};
  Rng rng;
  Cycles sched_now = 0;
  std::uint64_t sched_seq = 0;
  obs::Registry::State counters;
};

class System {
 public:
  explicit System(const SystemConfig& config);
  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// One data read issued by `core` in `mode` at simulated time `now`.
  /// Mutates cache + MEE state; returns total latency and the decrypted line.
  AccessResult do_read(CoreId core, CpuMode mode,
                       const mem::VirtualAddressSpace& vas, VirtAddr addr,
                       Cycles now);

  AccessResult do_write(CoreId core, CpuMode mode,
                        const mem::VirtualAddressSpace& vas, VirtAddr addr,
                        const mem::Line& data, Cycles now);

  /// clflush: evicts from the CPU hierarchy only — never from the MEE cache.
  Cycles do_clflush(const mem::VirtualAddressSpace& vas, VirtAddr addr);

  /// This machine's observability hub. Counters (cache/MEE/DES/sys groups)
  /// are always collected; tracing activates when a sink is installed —
  /// either directly via hub().set_trace_sink() or inherited from the
  /// ambient obs::TrialScope at construction. On destruction the counters
  /// are absorbed into the ambient TrialScope, if any.
  obs::Hub& hub() { return hub_; }
  const obs::Hub& hub() const { return hub_; }

  Scheduler& scheduler() { return scheduler_; }
  const mem::AddressMap& map() const { return map_; }
  mem::PhysicalMemory& memory() { return memory_; }
  mem::Dram& dram() { return dram_; }
  cache::Hierarchy& hierarchy() { return hierarchy_; }
  mee::MeeEngine& mee() { return *mee_; }
  mem::EpcAllocator& epc_allocator() { return epc_allocator_; }
  mem::GeneralAllocator& general_allocator() { return general_allocator_; }
  const SystemConfig& config() const { return config_; }

  /// Independent RNG stream for an agent.
  Rng fork_rng() { return rng_.fork(); }

  /// Captures the machine's full mutable state. The caller must have
  /// quiesced the scheduler first (no pending events, no live agents) —
  /// parked coroutine frames cannot be serialized. Non-const because the
  /// DRAM delta is flattened into the shared image (O(1) when clean).
  SystemSnapshot snapshot();

  /// Overwrites this machine's state with a snapshot taken from a System
  /// built with an identical config. The scheduler must be quiesced.
  /// Counter handles, trace sinks, and policy bindings stay this
  /// machine's own.
  void restore(const SystemSnapshot& snap);

  /// restore(), but tuned for recycling one machine across many trials from
  /// the same snapshot: when this System's counter baseline still matches
  /// `snap` (same snapshot object, no intervening reset), counters rewind
  /// via the registry's dirty set in O(touched) instead of O(all). The
  /// caller must keep `snap` alive (and unmoved) across the trials — the
  /// fast path keys on its address.
  void restore_into(const SystemSnapshot& snap);

  /// Builds a fresh machine from `config` and restores `snap` onto it —
  /// the snapshot/fork layer's single-call entry point. O(touched-state):
  /// construction cost plus pointer-shared DRAM.
  static std::unique_ptr<System> fork(const SystemConfig& config,
                                      const SystemSnapshot& snap);

  double bytes_per_second(double bits_per_cycle) const;

 private:
  void check_mode(CpuMode mode, PhysAddr paddr) const;

  SystemConfig config_;
  obs::Hub hub_;  ///< declared before every component that borrows it
  Rng rng_;
  mem::AddressMap map_;
  mem::PhysicalMemory memory_;
  mem::Dram dram_;
  cache::Hierarchy hierarchy_;
  std::unique_ptr<mee::MeeEngine> mee_;
  /// Decrypts hierarchy-hit protected lines without disturbing the MEE
  /// cache (do_read's "peek"). Persistent so the hot path never re-expands
  /// the AES key schedule, and its keystream cache survives across reads.
  crypto::LineCipher peek_cipher_;
  mem::EpcAllocator epc_allocator_;
  mem::GeneralAllocator general_allocator_;
  Scheduler scheduler_;

  /// restore_into() fast-path key: the snapshot whose counter image is the
  /// registry's current baseline, and the baseline epoch it was recorded at.
  const SystemSnapshot* last_restored_ = nullptr;
  std::uint64_t counter_epoch_ = 0;

  obs::Counter reads_;
  obs::Counter writes_;
  obs::Counter clflushes_;
  obs::Counter dram_reads_;
  obs::Counter dram_protected_reads_;
};

}  // namespace meecc::sim
