// Structured trace events.
//
// A TraceEvent is a fixed-size record of one simulator happening: which
// component, on which core, at what simulated cycle, on what address, with
// what outcome. `kind` and `outcome` are string_views and MUST point at
// string literals (or other storage outliving the sink) — events are
// emitted from hot paths and never copy strings.
//
// Sinks are synchronous and single-threaded by contract: a sink is only
// ever fed by one thread at a time (the runner buffers per-trial events
// and replays them in trial order when tracing a parallel sweep).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace meecc::obs {

/// Which simulator layer emitted the event.
enum class Component : std::uint8_t { kSystem, kCache, kMee, kDes, kChannel };

std::string_view to_string(Component component);

struct TraceEvent {
  Cycles cycle = 0;
  Component component = Component::kSystem;
  std::uint32_t core = 0;
  std::uint64_t addr = 0;
  std::string_view kind;     ///< "read", "walk", "evict", "probe", ...
  std::string_view outcome;  ///< "L1", "versions", "miss", ...
  std::int64_t value = 0;    ///< latency cycles, node count, bit value, ...

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
  /// Finalize output (Chrome's closing bracket). Idempotent.
  virtual void flush() {}
};

/// Keeps the first `max_events` events in memory (0 = unbounded); counts
/// the rest. Backs the golden-trace test and the unit tests.
class CollectingSink : public TraceSink {
 public:
  explicit CollectingSink(std::size_t max_events = 0)
      : max_events_(max_events) {}

  void emit(const TraceEvent& event) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// One deterministic JSON object per event:
///   {"cycle":480,"component":"mee","core":0,"addr":"0x1f40",
///    "kind":"walk","outcome":"versions","value":0}
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}

  void emit(const TraceEvent& event) override;
  void flush() override { out_.flush(); }

  /// The serialization, exposed so tests and the golden diff share it.
  static std::string to_json_line(const TraceEvent& event);

 private:
  std::ostream& out_;
};

/// Chrome trace_event format (load via chrome://tracing or Perfetto):
/// a JSON array of complete ("ph":"X") events with ts = simulated cycle
/// (displayed as microseconds), dur = event value, tid = core.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;

  void emit(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ostream& out_;
  bool first_ = true;
  bool closed_ = false;
};

/// Forwards every `period`-th event (the first one always passes) to an
/// inner sink — keeps multi-million-event runs tractable.
class SamplingSink : public TraceSink {
 public:
  SamplingSink(TraceSink& inner, std::uint64_t period);

  void emit(const TraceEvent& event) override;
  void flush() override { inner_.flush(); }

 private:
  TraceSink& inner_;
  std::uint64_t period_;
  std::uint64_t count_ = 0;
};

}  // namespace meecc::obs
