#include "obs/trace.h"

#include <cstdio>

#include "common/check.h"

namespace meecc::obs {

std::string_view to_string(Component component) {
  switch (component) {
    case Component::kSystem:
      return "system";
    case Component::kCache:
      return "cache";
    case Component::kMee:
      return "mee";
    case Component::kDes:
      return "des";
    case Component::kChannel:
      return "channel";
  }
  return "?";
}

void CollectingSink::emit(const TraceEvent& event) {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

std::string JsonlTraceSink::to_json_line(const TraceEvent& event) {
  // kind/outcome are literals from the instrumentation sites — no escaping
  // needed, and the format stays byte-deterministic for the golden diff.
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"cycle\":%llu,\"component\":\"%.*s\",\"core\":%u,"
                "\"addr\":\"0x%llx\",\"kind\":\"%.*s\",\"outcome\":\"%.*s\","
                "\"value\":%lld}",
                static_cast<unsigned long long>(event.cycle),
                static_cast<int>(to_string(event.component).size()),
                to_string(event.component).data(), event.core,
                static_cast<unsigned long long>(event.addr),
                static_cast<int>(event.kind.size()), event.kind.data(),
                static_cast<int>(event.outcome.size()), event.outcome.data(),
                static_cast<long long>(event.value));
  return buf;
}

void JsonlTraceSink::emit(const TraceEvent& event) {
  out_ << to_json_line(event) << '\n';
}

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(out) {
  out_ << "[\n";
}

void ChromeTraceSink::emit(const TraceEvent& event) {
  MEECC_CHECK(!closed_);
  if (!first_) out_ << ",\n";
  first_ = false;
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "{\"name\":\"%.*s:%.*s\",\"cat\":\"%.*s\",\"ph\":\"X\",\"ts\":%llu,"
      "\"dur\":%lld,\"pid\":0,\"tid\":%u,\"args\":{\"addr\":\"0x%llx\"}}",
      static_cast<int>(event.kind.size()), event.kind.data(),
      static_cast<int>(event.outcome.size()), event.outcome.data(),
      static_cast<int>(to_string(event.component).size()),
      to_string(event.component).data(),
      static_cast<unsigned long long>(event.cycle),
      static_cast<long long>(event.value < 0 ? 0 : event.value), event.core,
      static_cast<unsigned long long>(event.addr));
  out_ << buf;
}

void ChromeTraceSink::flush() {
  if (!closed_) {
    out_ << "\n]\n";
    closed_ = true;
  }
  out_.flush();
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

SamplingSink::SamplingSink(TraceSink& inner, std::uint64_t period)
    : inner_(inner), period_(period) {
  MEECC_CHECK(period >= 1);
}

void SamplingSink::emit(const TraceEvent& event) {
  if (count_++ % period_ == 0) inner_.emit(event);
}

}  // namespace meecc::obs
