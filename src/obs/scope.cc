#include "obs/scope.h"

#include "common/check.h"

namespace meecc::obs {

namespace {
thread_local TrialScope* g_current = nullptr;
}  // namespace

TrialScope::TrialScope(TraceSink* trace_sink)
    : previous_(g_current), trace_sink_(trace_sink) {
  g_current = this;
}

TrialScope::~TrialScope() {
  MEECC_CHECK(g_current == this);  // scopes must unwind LIFO
  g_current = previous_;
}

TrialScope* TrialScope::current() { return g_current; }

void TrialScope::absorb(const Registry& registry) {
  merge_into(counters_, registry.snapshot());
}

}  // namespace meecc::obs
