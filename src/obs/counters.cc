#include "obs/counters.h"

#include <algorithm>

namespace meecc::obs {

Counter CounterGroup::counter(std::string_view name) {
  if (registry_ == nullptr) return Counter{};
  return registry_->counter(group_, name);
}

Counter Registry::counter(std::string_view group, std::string_view name) {
  auto& slots = groups_[std::string(group)];
  auto it = slots.find(name);
  if (it == slots.end()) it = slots.emplace(std::string(name), 0).first;
  return Counter{&it->second};
}

CounterGroup Registry::group(std::string_view name) {
  return CounterGroup{this, std::string(name)};
}

CounterSnapshot Registry::snapshot() const {
  CounterSnapshot out;
  for (const auto& [group, slots] : groups_)
    for (const auto& [name, value] : slots)
      out.push_back({group + '.' + name, value});
  // groups_ iterates sorted, but "a.b"."c" and "a"."b.c" interleave; sort
  // the flattened names so merged snapshots compare bit-identically.
  std::sort(out.begin(), out.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset() {
  for (auto& [group, slots] : groups_)
    for (auto& [name, value] : slots) value = 0;
}

Registry::State Registry::capture() const { return groups_; }

void Registry::restore(const State& state) {
  // Zero first: slots registered after the capture must not keep post-capture
  // values, or a fork would double-count them.
  reset();
  for (const auto& [group, slots] : state)
    for (const auto& [name, value] : slots)
      groups_[group].insert_or_assign(name, value);
}

void merge_into(CounterSnapshot& dst, const CounterSnapshot& src) {
  CounterSnapshot out;
  out.reserve(dst.size() + src.size());
  std::size_t i = 0, j = 0;
  while (i < dst.size() || j < src.size()) {
    if (j >= src.size() || (i < dst.size() && dst[i].name < src[j].name)) {
      out.push_back(dst[i++]);
    } else if (i >= dst.size() || src[j].name < dst[i].name) {
      out.push_back(src[j++]);
    } else {
      out.push_back({dst[i].name, dst[i].value + src[j].value});
      ++i;
      ++j;
    }
  }
  dst = std::move(out);
}

std::uint64_t snapshot_value(const CounterSnapshot& snapshot,
                             std::string_view name) {
  for (const CounterSample& sample : snapshot)
    if (sample.name == name) return sample.value;
  return 0;
}

std::uint64_t snapshot_total(const CounterSnapshot& snapshot,
                             std::string_view prefix) {
  std::uint64_t total = 0;
  for (const CounterSample& sample : snapshot)
    if (sample.name.size() >= prefix.size() &&
        std::string_view(sample.name).substr(0, prefix.size()) == prefix)
      total += sample.value;
  return total;
}

}  // namespace meecc::obs
