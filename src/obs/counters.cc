#include "obs/counters.h"

#include <algorithm>

namespace meecc::obs {

Counter CounterGroup::counter(std::string_view name) {
  if (registry_ == nullptr) return Counter{};
  return registry_->counter(group_, name);
}

Counter Registry::counter(std::string_view group, std::string_view name) {
  auto& slots = groups_[std::string(group)];
  auto it = slots.find(name);
  if (it == slots.end())
    it = slots.emplace(std::string(name), detail::CounterSlot{}).first;
  return Counter{&it->second, &dirty_head_};
}

CounterGroup Registry::group(std::string_view name) {
  return CounterGroup{this, std::string(name)};
}

CounterSnapshot Registry::snapshot() const {
  CounterSnapshot out;
  for (const auto& [group, slots] : groups_)
    for (const auto& [name, slot] : slots)
      out.push_back({group + '.' + name, slot.value});
  // groups_ iterates sorted, but "a.b"."c" and "a"."b.c" interleave; sort
  // the flattened names so merged snapshots compare bit-identically.
  std::sort(out.begin(), out.end(),
            [](const CounterSample& a, const CounterSample& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::clear_dirty_list() {
  detail::CounterSlot* slot = dirty_head_;
  while (slot != &detail::dirty_list_end) {
    detail::CounterSlot* next = slot->next_dirty;
    slot->next_dirty = nullptr;
    slot = next;
  }
  dirty_head_ = &detail::dirty_list_end;
}

void Registry::reset() {
  for (auto& [group, slots] : groups_)
    for (auto& [name, slot] : slots) slot.value = slot.baseline = 0;
  clear_dirty_list();
  ++baseline_epoch_;
}

Registry::State Registry::capture() const {
  State out;
  for (const auto& [group, slots] : groups_) {
    auto& values = out[group];
    for (const auto& [name, slot] : slots)
      values.emplace(name, slot.value);
  }
  return out;
}

void Registry::restore(const State& state) {
  // Zero first: slots registered after the capture must not keep post-capture
  // values, or a fork would double-count them.
  reset();
  for (const auto& [group, slots] : state)
    for (const auto& [name, value] : slots) {
      detail::CounterSlot& slot = groups_[group][name];
      slot.value = slot.baseline = value;
    }
}

void Registry::restore_to_baseline() {
  detail::CounterSlot* slot = dirty_head_;
  while (slot != &detail::dirty_list_end) {
    detail::CounterSlot* next = slot->next_dirty;
    slot->value = slot->baseline;
    slot->next_dirty = nullptr;
    slot = next;
  }
  dirty_head_ = &detail::dirty_list_end;
}

void merge_into(CounterSnapshot& dst, const CounterSnapshot& src) {
  CounterSnapshot out;
  out.reserve(dst.size() + src.size());
  std::size_t i = 0, j = 0;
  while (i < dst.size() || j < src.size()) {
    if (j >= src.size() || (i < dst.size() && dst[i].name < src[j].name)) {
      out.push_back(dst[i++]);
    } else if (i >= dst.size() || src[j].name < dst[i].name) {
      out.push_back(src[j++]);
    } else {
      out.push_back({dst[i].name, dst[i].value + src[j].value});
      ++i;
      ++j;
    }
  }
  dst = std::move(out);
}

std::uint64_t snapshot_value(const CounterSnapshot& snapshot,
                             std::string_view name) {
  for (const CounterSample& sample : snapshot)
    if (sample.name == name) return sample.value;
  return 0;
}

std::uint64_t snapshot_total(const CounterSnapshot& snapshot,
                             std::string_view prefix) {
  std::uint64_t total = 0;
  for (const CounterSample& sample : snapshot)
    if (sample.name.size() >= prefix.size() &&
        std::string_view(sample.name).substr(0, prefix.size()) == prefix)
      total += sample.value;
  return total;
}

}  // namespace meecc::obs
