// TrialScope: the ambient observability context of one experiment trial.
//
// The runner installs a TrialScope (thread-local) around experiment.run();
// every sim::System constructed inside picks up the scope's trace sink,
// and absorbs its counter registry into the scope when destroyed. The
// experiment code itself never mentions observability — counters arrive in
// the TrialRecord "for free", and a trial that builds several Systems
// (fig6 builds two machines) gets their counters merged.
//
// Scopes nest (a stack per thread) but normal use is one per trial.
#pragma once

#include "obs/counters.h"
#include "obs/trace.h"

namespace meecc::obs {

class TrialScope {
 public:
  explicit TrialScope(TraceSink* trace_sink = nullptr);
  ~TrialScope();

  TrialScope(const TrialScope&) = delete;
  TrialScope& operator=(const TrialScope&) = delete;

  /// Innermost scope on this thread, or nullptr.
  static TrialScope* current();

  /// Merges `registry`'s counters into the scope's accumulated snapshot.
  void absorb(const Registry& registry);

  /// Everything absorbed so far, sorted by counter name.
  const CounterSnapshot& counters() const { return counters_; }

  TraceSink* trace_sink() const { return trace_sink_; }

 private:
  TrialScope* previous_;
  TraceSink* trace_sink_;
  CounterSnapshot counters_;
};

}  // namespace meecc::obs
