// The per-System observability hub: one counter registry plus an optional
// trace sink.
//
// The disabled path is off the hot path by construction:
//   * counters are pre-resolved handles — a bound counter is one add, an
//     unbound one is one null test;
//   * trace emission sites are written as
//         if (hub != nullptr && hub->tracing()) hub->trace({...});
//     tracing() is an inlined null/flag test, so with no sink installed the
//     TraceEvent is never even constructed. Defining MEECC_DISABLE_TRACING
//     turns tracing() into `false` at compile time and dead-code-eliminates
//     every emission site outright.
#pragma once

#include "obs/counters.h"
#include "obs/trace.h"

namespace meecc::obs {

#ifdef MEECC_DISABLE_TRACING
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

class Hub {
 public:
  Hub() = default;
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// The sink is borrowed; pass nullptr to disable tracing.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* trace_sink() const { return sink_; }

  bool tracing() const { return kTracingCompiledIn && sink_ != nullptr; }

  /// Precondition: tracing() — callers gate on it so the event is only
  /// materialized when someone listens.
  void trace(const TraceEvent& event) { sink_->emit(event); }

 private:
  Registry registry_;
  TraceSink* sink_ = nullptr;
};

}  // namespace meecc::obs
