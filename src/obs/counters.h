// Hierarchical named counters.
//
// A Registry owns one uint64 slot per "<group>.<name>" counter; components
// resolve a Counter handle once (at construction) and bump it on the hot
// path with a single predictable-branch increment. Handles stay valid for
// the Registry's lifetime because slots live in node-based maps.
//
// A detached (default-constructed) Counter is a no-op, so components built
// without an observability hub — unit tests, microbenchmarks — pay one
// null check per event and nothing else.
//
// Snapshots are plain sorted vectors: deterministic to serialize, cheap to
// merge across the several System instances one trial may build (fig6
// builds two machines; their counters add).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace meecc::obs {

class Registry;

namespace detail {

/// One counter's storage: the live value, the baseline recorded by the last
/// full restore (or reset), and an intrusive dirty link. `next_dirty` is
/// nullptr while the slot is clean; the first post-baseline increment links
/// the slot into its registry's dirty list, so rewinding to the baseline
/// touches only counters that actually moved.
struct CounterSlot {
  std::uint64_t value = 0;
  std::uint64_t baseline = 0;
  CounterSlot* next_dirty = nullptr;
};

/// Terminator of every dirty list (distinct from nullptr, which marks a
/// clean slot).
inline CounterSlot dirty_list_end;

}  // namespace detail

/// Cheap handle to one registry slot. Copyable; unbound handles drop
/// increments.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    if (slot_ == nullptr) return;
    slot_->value += n;
    // First touch since the baseline: link into the dirty list. The branch
    // is predictable (taken once per slot per trial) and the link field
    // shares the slot's cache line.
    if (slot_->next_dirty == nullptr) {
      slot_->next_dirty = *dirty_head_;
      *dirty_head_ = slot_;
    }
  }
  std::uint64_t value() const { return slot_ != nullptr ? slot_->value : 0; }
  bool bound() const { return slot_ != nullptr; }

 private:
  friend class Registry;
  Counter(detail::CounterSlot* slot, detail::CounterSlot** dirty_head)
      : slot_(slot), dirty_head_(dirty_head) {}

  detail::CounterSlot* slot_ = nullptr;
  detail::CounterSlot** dirty_head_ = nullptr;
};

/// One counter's value at snapshot time; `name` is the full dotted path.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;

  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

/// All counters of a registry (or a merged set of registries), sorted by
/// name. The sorted order is the serialization order everywhere.
using CounterSnapshot = std::vector<CounterSample>;

/// Adds `src` values into `dst` (union of names, values summed).
void merge_into(CounterSnapshot& dst, const CounterSnapshot& src);

/// Value of `name`, or 0 when absent.
std::uint64_t snapshot_value(const CounterSnapshot& snapshot,
                             std::string_view name);

/// Sum of every counter whose name starts with `prefix` ("mee.stop.").
std::uint64_t snapshot_total(const CounterSnapshot& snapshot,
                             std::string_view prefix);

/// Handle to one component's group; counter("hits") under group "cache.l1"
/// names "cache.l1.hits". Detached groups hand out detached counters.
class CounterGroup {
 public:
  CounterGroup() = default;

  Counter counter(std::string_view name);

 private:
  friend class Registry;
  CounterGroup(Registry* registry, std::string group)
      : registry_(registry), group_(std::move(group)) {}

  Registry* registry_ = nullptr;
  std::string group_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Resolves (creating on first use) the slot for "<group>.<name>".
  Counter counter(std::string_view group, std::string_view name);

  /// Component-facing handle; the group itself is created lazily.
  CounterGroup group(std::string_view name);

  /// Sorted snapshot of every registered counter.
  CounterSnapshot snapshot() const;

  /// Zeroes all values; handles stay valid. Experiments call this after
  /// setup so counters describe only the measured section.
  void reset();

  /// Full value image keyed by (group, name) — the nested shape, not the
  /// flattened dotted names, because "a.b"."c" and "a"."b.c" flatten to the
  /// same string and could not be split back apart.
  using State = std::map<
      std::string, std::map<std::string, std::uint64_t, std::less<>>,
      std::less<>>;

  /// Copies every slot's current value (snapshot/fork support).
  State capture() const;

  /// Writes `state` back into the slots, creating any missing ones so
  /// lazily-bound counters (per-core stop levels, channel send/probe) are
  /// restored even before their component re-binds them. Slots absent from
  /// `state` are zeroed. Existing handles stay valid. Also records `state`
  /// as the new baseline, making a later restore_to_baseline() O(touched).
  void restore(const State& state);

  /// Rewinds every counter to the baseline recorded by the last restore()
  /// or reset(). O(counters touched since then) — the recycled-System fast
  /// path for re-running trials from the same snapshot.
  void restore_to_baseline();

  /// Bumped on every operation that re-records the baseline (restore,
  /// reset). Lets a caller detect that the baseline it remembers is stale.
  std::uint64_t baseline_epoch() const { return baseline_epoch_; }

 private:
  void clear_dirty_list();

  // Node-based nested maps: value slots never move, so Counter handles
  // survive later registrations.
  std::map<std::string,
           std::map<std::string, detail::CounterSlot, std::less<>>,
           std::less<>>
      groups_;
  detail::CounterSlot* dirty_head_ = &detail::dirty_list_end;
  std::uint64_t baseline_epoch_ = 0;
};

}  // namespace meecc::obs
